"""Functional (architectural) simulator for the Alpha-like ISA.

The machine executes a :class:`~repro.ir.Program` with exact 64-bit
two's-complement semantics, honouring the *encoded width* of every
instruction (a ``add.8`` wraps its result to 8 bits).  Because VRP/VRS are
required to be conservative, running the original and the transformed
program must produce identical outputs — the test suite checks exactly
that.

Besides program output, the machine produces the dynamic artefacts the rest
of the system needs:

* basic-block execution counts (VRS candidate identification, Figure 4),
* a full dynamic trace (timing model, power model, hardware schemes),
* value observations at watched instructions (the Calder-style value
  profiler used by VRS).

Three interpreter tiers are provided (see ``docs/simulator.md``):

* the **reference** loop decodes every instruction on every dynamic step
  (attribute loads, kind dispatch, operand ``isinstance`` checks);
* the **fast-dispatch** loop compiles each static instruction once per
  ``Machine`` into a closure with its opcode semantics, operand slots,
  width wrap, trace emission and successor program counter already
  resolved, so the hot loop is a single indexed call per dynamic
  instruction;
* the **block** tier — the default — generates straight-line Python
  source per basic block (:mod:`repro.sim.blockc`), compiles it once per
  ``Machine`` and drives a block-level hot loop, so dispatch and the
  instruction-limit check amortize over whole blocks and trace emission
  is batched per block.

All three produce bit-identical :class:`RunResult`/:class:`Trace`
contents; select a tier with ``Machine.run(dispatch=...)`` or
``REPRO_SIM_DISPATCH`` (``block``/``fast``/``reference``).  Compiled
artifacts — the fast tier's per-instruction handler makers and the block
tier's compiled programs — are cached on the ``Machine`` keyed only by
the static program, with per-run state (registers, memory, trace
columns, counters) passed in as arguments, so repeated ``run()`` calls
perform **zero** recompilation.  Consequently a ``Machine`` snapshots
the program at its first run: mutating the :class:`~repro.ir.Program`
afterwards requires a fresh ``Machine`` (every transformation pass in
this repository already builds one).

Trace emission is columnar: the reference and fast loops write through
the *same* pair of append closures from :meth:`Trace.emitters` — the
reference loop encodes the per-record flag byte dynamically, the fast
loop bakes it into each compiled handler as a constant — and the block
tier batches whole-block meta templates through
:meth:`Trace.block_emitters`, so every emission site shares one encoding
and cannot drift (see ``repro/sim/trace.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Protocol

from ..isa import Imm, Instruction, Opcode, OpKind, Reg, Width, to_signed
from ..isa.semantics import (
    ARITHMETIC_SEMANTICS as _ARITH,
    BRANCH_SEMANTICS as _BRANCH,
    COMPARE_SEMANTICS as _COMPARE,
    MASK_SEMANTICS as _MASK,
)
from ..isa.widths import wrap_to_width
from ..ir import Program, STACK_BASE_ADDRESS
from .blockc import BlockProgram, compile_blocks
from .memory import Memory, load_program_data
from .trace import (
    FLAG_MEM,
    FLAG_RESULT,
    FLAG_TAKEN,
    FLAG_TAKEN_TRUE,
    StaticInfo,
    Trace,
    pack_record,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..uarch.config import MachineConfig
    from .fusedc import FusedOutcome, FusedProgram

__all__ = [
    "DISPATCH_TIERS",
    "Machine",
    "RunResult",
    "SimulationError",
    "SimulationLimitExceeded",
    "ValueObserver",
]

#: Recognized interpreter tiers, fastest first.
DISPATCH_TIERS = ("block", "fast", "reference")

#: Base address of the (virtual) code segment; instructions are 4 bytes.
CODE_BASE_ADDRESS = 0x1000

#: Sentinel program counter returned by fast-dispatch handlers to halt.
_HALT_PC = -1

_UINT64 = (1 << 64) - 1

_TAKEN = FLAG_TAKEN | FLAG_TAKEN_TRUE
_NOT_TAKEN = FLAG_TAKEN


def _operand_slot(operand) -> tuple[int, int]:
    """Resolve an operand to ``(register_index, constant)`` at compile time.

    A register index of ``-1`` means the operand is a constant: either an
    immediate or the hardwired zero register.
    """
    if isinstance(operand, Imm):
        return -1, operand.value
    if operand.index == 31:
        return -1, 0
    return operand.index, 0


def _count_block_entry(
    block_counts: dict[tuple[str, str], int],
    block_key: tuple[str, str],
    inner: "Callable[[], int]",
) -> "Callable[[], int]":
    """Wrap the first handler of a basic block with an entry counter."""

    def handler() -> int:
        block_counts[block_key] = block_counts.get(block_key, 0) + 1
        return inner()

    return handler


#: Budget probes run every this many dynamic instructions (amortized to
#: block granularity, like the instruction-limit check itself).  Small
#: enough that the suite workloads (tens of thousands of dynamic
#: instructions) are probed several times per run; a budgeted run pays
#: one ``time.monotonic()`` call per stride and an unbudgeted run pays a
#: single comparison per block.
_BUDGET_CHECK_STRIDE = 8192


def _env_budget_float(name: str) -> Optional[float]:
    value = os.environ.get(name, "")
    if not value:
        return None
    try:
        parsed = float(value)
    except ValueError:
        return None
    return parsed if parsed > 0 else None


def _env_budget_int(name: str) -> Optional[int]:
    value = os.environ.get(name, "")
    if not value:
        return None
    try:
        parsed = int(value)
    except ValueError:
        return None
    return parsed if parsed > 0 else None


def _resource_exhausted(message: str) -> Exception:
    """Build a ResourceExhausted from the experiments taxonomy.

    Imported lazily at the raise site: ``repro.experiments.resilience``
    is stdlib-only, so no ``sim`` ↔ ``experiments`` import cycle can
    form, and simulator users that never configure budgets never load
    it.
    """
    from ..experiments.resilience import ResourceExhausted

    return ResourceExhausted(message)


class SimulationError(Exception):
    """Raised when the simulated program performs an illegal operation."""


class SimulationLimitExceeded(SimulationError):
    """Raised when the dynamic instruction limit is exceeded."""


class ValueObserver(Protocol):
    """Interface for value profiling hooks (see :mod:`repro.core.profiling`)."""

    watched_uids: set[int]

    def observe(self, uid: int, value: int) -> None:  # pragma: no cover - protocol
        ...


@dataclass
class RunResult:
    """Outcome of one functional simulation."""

    instructions: int
    output: list[int]
    block_counts: dict[tuple[str, str], int]
    halted: bool
    trace: Optional[Trace] = None
    call_counts: dict[str, int] = field(default_factory=dict)
    #: Set by the fused pipeline (``run(pipeline="fused")``): the timing
    #: result and shape aggregate a materialized run would need a trace
    #: plus two analysis walks to produce.  ``trace`` is None then.
    fused: Optional["FusedOutcome"] = None

    def instruction_counts(self, program: Program) -> dict[int, int]:
        """Per-static-instruction execution counts, derived from block counts."""
        counts: dict[int, int] = {}
        for function in program.iter_functions():
            for block in function.iter_blocks():
                count = self.block_counts.get((function.name, block.label), 0)
                if count == 0:
                    continue
                for inst in block.instructions:
                    counts[inst.uid] = counts.get(inst.uid, 0) + count
        return counts


def _default_dispatch() -> str:
    """Dispatch tier selected by ``REPRO_SIM_DISPATCH`` (default: block).

    The reference-loop opt-out vocabulary is a superset of
    ``REPRO_RESULT_STORE``'s disabled values, so either spelling works
    for both variables; ``fast`` selects the per-instruction compiled
    tier, anything else the block-compiled tier.
    """
    value = os.environ.get("REPRO_SIM_DISPATCH", "").lower()
    if value in ("reference", "slow", "0", "off", "false", "disabled", "none"):
        return "reference"
    if value == "fast":
        return "fast"
    return "block"


def _resolve_tier(fast_dispatch: Optional[bool], dispatch: Optional[str], default: str) -> str:
    """Resolve the tier from the new ``dispatch`` and legacy ``fast_dispatch``.

    ``dispatch`` wins; the boolean maps onto the two tiers it predates
    (``True`` → fast, ``False`` → reference) so existing differential
    callers keep selecting exactly the loop they compare against.
    """
    if dispatch is not None:
        if dispatch not in DISPATCH_TIERS:
            raise ValueError(
                f"unknown dispatch tier {dispatch!r}; expected one of {', '.join(DISPATCH_TIERS)}"
            )
        return dispatch
    if fast_dispatch is not None:
        return "fast" if fast_dispatch else "reference"
    return default


class Machine:
    """Functional simulator."""

    def __init__(
        self,
        program: Program,
        max_instructions: int = 20_000_000,
        fast_dispatch: Optional[bool] = None,
        dispatch: Optional[str] = None,
        wall_time_s: Optional[float] = None,
        max_trace_bytes: Optional[int] = None,
    ) -> None:
        self.program = program
        self.max_instructions = max_instructions
        # Resource budgets (see docs/resilience.md): adversarial programs
        # — a fuzz corpus, a user submission — must fail fast with
        # ResourceExhausted instead of hanging a worker (wall time) or
        # OOM-ing it (trace arena bytes).  None disables a budget; the
        # environment supplies service-wide defaults.
        self.wall_time_s = wall_time_s if wall_time_s is not None else _env_budget_float(
            "REPRO_SIM_WALL_TIME_S"
        )
        self.max_trace_bytes = (
            max_trace_bytes
            if max_trace_bytes is not None
            else _env_budget_int("REPRO_SIM_MAX_TRACE_BYTES")
        )
        self.dispatch = _resolve_tier(fast_dispatch, dispatch, _default_dispatch())
        # Compiled artifacts, cached per Machine and shared across runs:
        # the fast tier's per-instruction handler makers and the block
        # tier's compiled programs (one per collect_trace flavour).
        self._fast_makers: Optional[list] = None
        self._block_programs: dict[bool, BlockProgram] = {}
        # Fused simulate→time→account programs, one per (machine config,
        # probe flavour) — see repro.sim.fusedc.
        self._fused_programs: dict[tuple, "FusedProgram"] = {}
        # Flatten the program into an address-indexed instruction sequence.
        self._flat: list[tuple[str, str, Instruction]] = []
        self._block_start: dict[tuple[str, str], int] = {}
        self._function_entry: dict[str, int] = {}
        for function in program.iter_functions():
            self._function_entry[function.name] = len(self._flat)
            for block in function.iter_blocks():
                self._block_start[(function.name, block.label)] = len(self._flat)
                for inst in block.instructions:
                    self._flat.append((function.name, block.label, inst))
        self.static_info = StaticInfo.from_program(program)
        #: Instruction address per static uid; traces derive their address
        #: and next-address columns from this map instead of storing them.
        self.address_by_uid: dict[int, int] = {
            inst.uid: CODE_BASE_ADDRESS + 4 * index
            for index, (_, _, inst) in enumerate(self._flat)
        }
        #: A return address outside the code segment terminates execution
        #: (used when the entry function returns instead of halting).
        self._stop_address = self.address_of_index(len(self._flat) + 16)

    @property
    def fast_dispatch(self) -> bool:
        """True when a compiled tier (``fast`` or ``block``) drives runs."""
        return self.dispatch != "reference"

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def address_of_index(self, index: int) -> int:
        return CODE_BASE_ADDRESS + 4 * index

    def index_of_address(self, address: int) -> int:
        index = (address - CODE_BASE_ADDRESS) // 4
        if not 0 <= index <= len(self._flat):
            raise SimulationError(f"jump to invalid code address {address:#x}")
        return index

    def _new_trace(self) -> Trace:
        return Trace(static=self.static_info, addresses=self.address_by_uid)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        collect_trace: bool = False,
        value_observer: Optional[ValueObserver] = None,
        arguments: Optional[list[int]] = None,
        fast_dispatch: Optional[bool] = None,
        dispatch: Optional[str] = None,
        pipeline: Optional[str] = None,
        machine_config: Optional["MachineConfig"] = None,
    ) -> RunResult:
        """Execute the program from its entry function until HALT.

        Args:
            collect_trace: record a full :class:`Trace` (needed by the
                timing/power models; costs memory proportional to the run).
            value_observer: optional value-profiling hook.
            arguments: optional initial values for the argument registers of
                the entry function (``a0``, ``a1``...).
            fast_dispatch: legacy per-run override (``True`` selects the
                fast per-instruction tier, ``False`` the reference loop).
            dispatch: per-run tier override (``"block"``, ``"fast"`` or
                ``"reference"``); wins over ``fast_dispatch``.
            pipeline: ``"fused"`` runs the streaming simulate→time→account
                tier (:mod:`repro.sim.fusedc`): no trace is materialized
                and the result carries a :class:`FusedOutcome` instead.
                ``"materialized"``/None is the classic trace pipeline.
            machine_config: the :class:`~repro.uarch.MachineConfig` the
                fused tier times against (default config when omitted);
                only meaningful with ``pipeline="fused"``.
        """
        tier = _resolve_tier(fast_dispatch, dispatch, self.dispatch)
        if pipeline not in (None, "materialized", "fused"):
            raise ValueError(
                f"unknown pipeline {pipeline!r}; expected 'fused' or 'materialized'"
            )
        if pipeline == "fused":
            if collect_trace:
                raise ValueError(
                    "pipeline='fused' never materializes a trace; "
                    "use the materialized pipeline with collect_trace"
                )
            if value_observer is not None:
                raise ValueError("pipeline='fused' does not support value observers")
            return self._run_fused(machine_config, arguments, tier)
        if machine_config is not None:
            raise ValueError("machine_config is only meaningful with pipeline='fused'")
        if tier == "block":
            return self._run_block(collect_trace, value_observer, arguments)
        if tier == "fast":
            return self._run_fast(collect_trace, value_observer, arguments)
        return self._run_reference(collect_trace, value_observer, arguments)

    def _init_run_state(self, arguments: Optional[list[int]]) -> tuple[list[int], Memory, int]:
        """Fresh per-run architectural state: ``(regs, memory, entry pc)``."""
        regs = [0] * 32
        regs[30] = STACK_BASE_ADDRESS
        memory = Memory()
        load_program_data(memory, self.program)
        if arguments:
            for index, value in enumerate(arguments[:6]):
                regs[16 + index] = to_signed(value)
        entry = self.program.entry
        if entry not in self._function_entry:
            raise SimulationError(f"entry function {entry!r} not found")
        regs[26] = self._stop_address
        return regs, memory, self._function_entry[entry]

    # ------------------------------------------------------------------
    # Resource budgets (wall time, trace bytes; see docs/resilience.md)
    # ------------------------------------------------------------------
    def _budget_deadline(self) -> Optional[float]:
        """Monotonic deadline for this run, or None when unbudgeted."""
        if self.wall_time_s is None:
            return None
        return time.monotonic() + self.wall_time_s

    def _check_budgets(
        self, deadline: Optional[float], trace: Optional[Trace], executed: int
    ) -> None:
        """Raise ResourceExhausted when a configured budget is blown.

        Called every ``_BUDGET_CHECK_STRIDE`` dynamic instructions from
        the hot loops — amortized like the instruction-limit check, so an
        unbudgeted run pays one boolean test per block and nothing else.
        """
        if deadline is not None and time.monotonic() > deadline:
            raise _resource_exhausted(
                f"wall-time budget of {self.wall_time_s:g}s exceeded "
                f"after {executed} dynamic instructions"
            )
        if trace is not None and self.max_trace_bytes is not None:
            held = trace.memory_bytes()
            if held > self.max_trace_bytes:
                raise _resource_exhausted(
                    f"trace budget of {self.max_trace_bytes} bytes exceeded "
                    f"({held} bytes held after {executed} dynamic instructions)"
                )

    def _run_reference(
        self,
        collect_trace: bool = False,
        value_observer: Optional[ValueObserver] = None,
        arguments: Optional[list[int]] = None,
    ) -> RunResult:
        """The original decode-every-step interpreter loop."""
        regs, memory, pc = self._init_run_state(arguments)
        block_counts: dict[tuple[str, str], int] = {}
        call_counts: dict[str, int] = {}
        trace = self._new_trace() if collect_trace else None
        output: list[int] = []

        executed = 0
        for _ in self._reference_steps(
            regs, memory, pc, trace, output, block_counts, call_counts, value_observer
        ):
            executed += 1

        return RunResult(
            instructions=executed,
            output=output,
            block_counts=block_counts,
            halted=True,
            trace=trace,
            call_counts=call_counts,
        )

    def _reference_steps(
        self,
        regs: list[int],
        memory: Memory,
        pc: int,
        trace: Optional[Trace],
        output: list[int],
        block_counts: dict[tuple[str, str], int],
        call_counts: dict[str, int],
        value_observer: Optional[ValueObserver] = None,
    ):
        """Single-step generator form of the reference interpreter.

        Yields the next program counter after every executed instruction
        (``_HALT_PC`` after the halting one) and returns when the program
        halts; errors (limit exceeded, invalid jumps) propagate out of
        ``next()`` exactly as they propagate out of a full run.
        ``_run_reference`` drains it to completion; the lockstep
        co-execution harness (:mod:`repro.coexec`) advances it one
        instruction at a time against another tier that shares no state.
        """
        stop_address = self._stop_address
        emit = emit_mem = None
        if trace is not None:
            emit, emit_mem = trace.emitters()
        watched = value_observer.watched_uids if value_observer is not None else frozenset()

        executed = 0
        halted = False

        while True:
            if pc >= len(self._flat):
                raise SimulationError("program counter ran past the end of the program")
            function_name, block_label, inst = self._flat[pc]
            block_key = (function_name, block_label)
            if self._block_start[block_key] == pc:
                block_counts[block_key] = block_counts.get(block_key, 0) + 1

            executed += 1
            if executed > self.max_instructions:
                raise SimulationLimitExceeded(
                    f"exceeded the limit of {self.max_instructions} dynamic instructions"
                )

            next_pc = pc + 1
            taken: Optional[bool] = None
            mem_address: Optional[int] = None
            result: Optional[int] = None
            srcs: tuple[int, ...] = ()

            op = inst.op
            kind = inst.kind
            width = inst.width

            if kind is OpKind.ALU or kind is OpKind.MUL or kind is OpKind.LOGICAL or kind is OpKind.SHIFT:
                a = self._read(regs, inst.srcs[0])
                b = self._read(regs, inst.srcs[1])
                srcs = (a, b)
                result = _ARITH[op](a, b, width)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.COMPARE:
                a = self._read(regs, inst.srcs[0])
                b = self._read(regs, inst.srcs[1])
                srcs = (a, b)
                result = _COMPARE[op](a, b)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.CMOV:
                cond = self._read(regs, inst.srcs[0])
                value = self._read(regs, inst.srcs[1])
                old = self._read(regs, inst.dest)
                srcs = (cond, value, old)
                take = cond == 0 if op is Opcode.CMOVEQ else cond != 0
                result = wrap_to_width(value, width) if take else old
                self._write(regs, inst.dest, result)
            elif kind is OpKind.MASK or kind is OpKind.EXTEND:
                a = self._read(regs, inst.srcs[0])
                srcs = (a,)
                result = _MASK[op](a)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.MOVE:
                if op is Opcode.LI:
                    result = to_signed(self._read(regs, inst.srcs[0]))
                elif op is Opcode.MOV:
                    a = self._read(regs, inst.srcs[0])
                    srcs = (a,)
                    result = a
                else:  # LDA
                    a = self._read(regs, inst.srcs[0])
                    offset = self._read(regs, inst.srcs[1])
                    srcs = (a,)
                    result = wrap_to_width(a + offset, Width.QUAD)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.LOAD:
                base = self._read(regs, inst.srcs[0])
                offset = self._read(regs, inst.srcs[1])
                mem_address = (base + offset) & ((1 << 64) - 1)
                srcs = (base,)
                signed = op in (Opcode.LDW, Opcode.LDQ)
                result = memory.load(mem_address, inst.memory_width, signed)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.STORE:
                value = self._read(regs, inst.srcs[0])
                base = self._read(regs, inst.srcs[1])
                offset = self._read(regs, inst.srcs[2])
                mem_address = (base + offset) & ((1 << 64) - 1)
                srcs = (value, base)
                memory.store(mem_address, value, inst.memory_width)
            elif kind is OpKind.BRANCH:
                if op is Opcode.BR:
                    taken = True
                else:
                    cond = self._read(regs, inst.srcs[0])
                    srcs = (cond,)
                    taken = _BRANCH[op](cond)
                if taken:
                    next_pc = self._block_start[(function_name, inst.target)]
            elif kind is OpKind.CALL:
                return_address = self.address_of_index(pc + 1)
                self._write(regs, inst.dest, return_address)
                result = return_address
                next_pc = self._function_entry[inst.target]
                call_counts[inst.target] = call_counts.get(inst.target, 0) + 1
                taken = True
            elif kind is OpKind.RETURN:
                address = self._read(regs, inst.srcs[0])
                srcs = (address,)
                taken = True
                if address == stop_address:
                    halted = True
                else:
                    next_pc = self.index_of_address(address)
            elif kind is OpKind.HALT:
                halted = True
            elif kind is OpKind.OUTPUT:
                value = self._read(regs, inst.srcs[0])
                srcs = (value,)
                output.append(value)
            elif kind is OpKind.NOP:
                pass
            else:  # pragma: no cover - all kinds handled above
                raise SimulationError(f"cannot execute {inst}")

            if inst.uid in watched and result is not None:
                value_observer.observe(inst.uid, result)

            if emit is not None:
                meta, values = pack_record(
                    inst.uid, srcs, result, taken, mem_address is not None
                )
                if mem_address is None:
                    emit(meta, values)
                else:
                    emit_mem(meta, values, mem_address)

            if halted:
                yield _HALT_PC
                return
            pc = next_pc
            yield pc

    # ------------------------------------------------------------------
    # Fast dispatch
    # ------------------------------------------------------------------
    def _run_fast(
        self,
        collect_trace: bool = False,
        value_observer: Optional[ValueObserver] = None,
        arguments: Optional[list[int]] = None,
    ) -> RunResult:
        """Threaded-code interpreter: one precompiled closure per static pc.

        Every closure returns the next program counter (``_HALT_PC`` to
        stop); the hot loop is reduced to an index, a call and the dynamic
        instruction-limit check.
        """
        regs, memory, pc = self._init_run_state(arguments)
        block_counts: dict[tuple[str, str], int] = {}
        call_counts: dict[str, int] = {}
        trace = self._new_trace() if collect_trace else None
        output: list[int] = []
        return self._finish_fast(
            pc, 0, regs, memory, trace, output, block_counts, call_counts, value_observer
        )

    def _finish_fast(
        self,
        pc: int,
        executed: int,
        regs: list[int],
        memory: Memory,
        trace: Optional[Trace],
        output: list[int],
        block_counts: dict[tuple[str, str], int],
        call_counts: dict[str, int],
        value_observer: Optional[ValueObserver],
    ) -> RunResult:
        """Bind fast-tier handlers to the given run state and drive to halt.

        Shared by ``_run_fast`` (from the entry point) and the block
        tier's mid-block landing pad (from an arbitrary resume point).
        """
        handlers = self._compile_handlers(
            regs, memory, trace, output, block_counts, call_counts, value_observer
        )
        executed = self._drive_handlers(handlers, pc, executed)
        return RunResult(
            instructions=executed,
            output=output,
            block_counts=block_counts,
            halted=True,
            trace=trace,
            call_counts=call_counts,
        )

    def _drive_handlers(self, handlers: list[Callable[[], int]], pc: int, executed: int) -> int:
        """The fast tier's hot loop, resumable from any (pc, count) point."""
        limit = self.max_instructions
        deadline = self._budget_deadline()
        next_check = executed + _BUDGET_CHECK_STRIDE if deadline is not None else None
        try:
            while pc >= 0:
                executed += 1
                if executed > limit:
                    raise SimulationLimitExceeded(
                        f"exceeded the limit of {self.max_instructions} dynamic instructions"
                    )
                if next_check is not None and executed >= next_check:
                    next_check = executed + _BUDGET_CHECK_STRIDE
                    self._check_budgets(deadline, None, executed)
                pc = handlers[pc]()
        except IndexError:
            if 0 <= pc < len(handlers):
                # The dispatch index was valid, so the IndexError escaped a
                # handler body (e.g. a buggy value observer) — surface it.
                raise
            raise SimulationError("program counter ran past the end of the program") from None
        return executed

    # ------------------------------------------------------------------
    # Block dispatch
    # ------------------------------------------------------------------
    def _run_block(
        self,
        collect_trace: bool = False,
        value_observer: Optional[ValueObserver] = None,
        arguments: Optional[list[int]] = None,
    ) -> RunResult:
        """Block-compiled interpreter: straight-line code per basic block.

        The program is compiled to specialized Python source once per
        ``Machine`` (see :mod:`repro.sim.blockc`) and only *bound* to the
        per-run state here, so repeated runs pay zero compilation.  The
        hot loop advances one basic block per iteration: the dynamic
        instruction-limit check is hoisted to block granularity (legal
        because a unit's length is fixed and, with no value observer,
        nothing a partially executed block does is observable once
        ``SimulationLimitExceeded`` propagates).

        Value-profiling runs fall back to the fast tier: the observer's
        watched set is per-run, which is exactly what the block compiler
        bakes out.
        """
        if value_observer is not None:
            return self._run_fast(collect_trace, value_observer, arguments)
        regs, memory, pc = self._init_run_state(arguments)
        block_counts: dict[tuple[str, str], int] = {}
        call_counts: dict[str, int] = {}
        trace = self._new_trace() if collect_trace else None
        output: list[int] = []

        program = self._block_programs.get(collect_trace)
        if program is None:
            program = compile_blocks(self, collect_trace)
            self._block_programs[collect_trace] = program
        if trace is not None:
            rows_extend, arena_extend, mem_append, spill = trace.block_emitters()
        else:
            rows_extend = arena_extend = mem_append = spill = None
        funcs = program.bind(
            regs,
            memory.load,
            memory.store,
            memory._pages.get,
            memory._page,
            output.append,
            block_counts,
            call_counts,
            program.consts,
            rows_extend,
            arena_extend,
            mem_append,
            spill,
        )
        lengths = program.lengths

        executed = 0
        limit = self.max_instructions
        deadline = self._budget_deadline()
        trace_cap = trace if self.max_trace_bytes is not None else None
        next_check = (
            _BUDGET_CHECK_STRIDE
            if deadline is not None or trace_cap is not None
            else None
        )
        try:
            while pc >= 0:
                unit = funcs[pc]
                if unit is None:
                    # A computed control transfer landed mid-block (a
                    # return address nobody's call produced): finish the
                    # run on the per-instruction tier, sharing all state.
                    return self._finish_fast(
                        pc, executed, regs, memory, trace, output,
                        block_counts, call_counts, None,
                    )
                executed += lengths[pc]
                if executed > limit:
                    raise SimulationLimitExceeded(
                        f"exceeded the limit of {self.max_instructions} dynamic instructions"
                    )
                if next_check is not None and executed >= next_check:
                    next_check = executed + _BUDGET_CHECK_STRIDE
                    self._check_budgets(deadline, trace_cap, executed)
                pc = unit()
        except IndexError:
            if 0 <= pc < len(funcs):
                raise
            raise SimulationError("program counter ran past the end of the program") from None

        return RunResult(
            instructions=executed,
            output=output,
            block_counts=block_counts,
            halted=True,
            trace=trace,
            call_counts=call_counts,
        )

    # ------------------------------------------------------------------
    # Fused pipeline (simulate + time + account in one streaming pass)
    # ------------------------------------------------------------------
    def _run_fused(
        self,
        machine_config: Optional["MachineConfig"] = None,
        arguments: Optional[list[int]] = None,
        tier: str = "block",
        probe_sink: Optional[list] = None,
    ) -> RunResult:
        """Drive the fused tier (see :mod:`repro.sim.fusedc`).

        The hot loop is the block tier's, but the compiled units update
        the timing-kernel state and per-unit width-signature counts
        inline instead of emitting trace rows.  Non-``block`` tiers and
        mid-unit landings fall back to :meth:`_fused_fallback`, which is
        bit-identical by construction (compiled timing kernel + trace
        shape aggregation over a materialized run).  ``probe_sink``
        additionally collects one timing-counter snapshot per record —
        the hook ``repro.coexec.compare_fused`` bisects with.
        """
        from ..uarch.config import MachineConfig
        from .fusedc import FusedOutcome, fused_program_for, timing_from_counters

        config = machine_config if machine_config is not None else MachineConfig()
        if tier != "block":
            if probe_sink is not None:
                raise RuntimeError("the fused per-record probe requires the block tier")
            return self._fused_fallback(config, arguments, tier)
        probe = probe_sink is not None
        program = self._fused_programs.get((config, probe))
        if program is None:
            program = fused_program_for(self, config, probe=probe)
            self._fused_programs[(config, probe)] = program

        regs, memory, pc = self._init_run_state(arguments)
        block_counts: dict[tuple[str, str], int] = {}
        call_counts: dict[str, int] = {}
        output: list[int] = []
        funcs, collect, finalize = program.bind(
            regs,
            memory.load,
            memory.store,
            memory._pages.get,
            memory._page,
            output.append,
            block_counts,
            call_counts,
            program.consts,
            program.sig_cache.__getitem__,
            probe_sink.append if probe_sink is not None else None,
        )
        lengths = program.lengths

        executed = 0
        limit = self.max_instructions
        deadline = self._budget_deadline()
        next_check = _BUDGET_CHECK_STRIDE if deadline is not None else None
        try:
            # Mid-unit landings surface as calling the ``None`` slot —
            # keeping the per-iteration ``is None`` test out of the hot
            # loop — and are told apart from unit-internal TypeErrors by
            # inspecting the slot afterwards.
            while pc >= 0:
                executed += lengths[pc]
                if executed > limit:
                    raise SimulationLimitExceeded(
                        f"exceeded the limit of {self.max_instructions} dynamic instructions"
                    )
                if next_check is not None and executed >= next_check:
                    next_check = executed + _BUDGET_CHECK_STRIDE
                    self._check_budgets(deadline, None, executed)
                pc = funcs[pc]()
        except TypeError:
            if not (0 <= pc < len(funcs)) or funcs[pc] is not None:
                raise
            if probe:
                raise RuntimeError(
                    "fused probe run landed mid-unit; no per-record stream exists"
                ) from None
            # A computed control transfer landed mid-block.  The run is
            # deterministic, so rerunning it materialized from scratch
            # produces the identical outcome.
            return self._fused_fallback(config, arguments, tier)
        except IndexError:
            if 0 <= pc < len(funcs):
                raise
            raise SimulationError("program counter ran past the end of the program") from None

        timing = timing_from_counters(finalize(), executed)
        shapes = program.expand(
            collect(), executed, self.static_info, self.static_info.uid_base
        )
        return RunResult(
            instructions=executed,
            output=output,
            block_counts=block_counts,
            halted=True,
            trace=None,
            call_counts=call_counts,
            fused=FusedOutcome(timing=timing, shapes=shapes),
        )

    def _fused_fallback(
        self,
        config: "MachineConfig",
        arguments: Optional[list[int]],
        tier: str,
    ) -> RunResult:
        """Materialized-oracle rerun presenting a fused result surface."""
        from .fusedc import outcome_from_trace

        run = self.run(collect_trace=True, arguments=arguments, dispatch=tier)
        run.fused = outcome_from_trace(run.trace, config)
        run.trace = None
        return run

    def _compile_handlers(
        self,
        regs: list[int],
        memory: Memory,
        trace: Optional[Trace],
        output: list[int],
        block_counts: dict[tuple[str, str], int],
        call_counts: dict[str, int],
        value_observer: Optional[ValueObserver],
    ) -> list[Callable[[], int]]:
        """Bind one handler closure per flattened instruction.

        The per-instruction *makers* — everything derivable from the
        static program: opcode semantics, operand slots, packed trace
        metas, successor pcs — are built once per ``Machine`` and cached;
        each run only calls them with its own state (register file,
        memory, trace emitters), which is plain closure creation.
        """
        makers = self._fast_makers
        if makers is None:
            makers = self._fast_makers = [
                self._instruction_maker(pc, function_name, inst)
                for pc, (function_name, _, inst) in enumerate(self._flat)
            ]
        watched = value_observer.watched_uids if value_observer is not None else frozenset()
        emit = emit_mem = None
        if trace is not None:
            emit, emit_mem = trace.emitters()
        load = memory.load
        store = memory.store
        output_append = output.append
        handlers: list[Callable[[], int]] = []
        for pc, (function_name, block_label, inst) in enumerate(self._flat):
            observe = (
                value_observer.observe
                if value_observer is not None and inst.uid in watched
                else None
            )
            handler = makers[pc](regs, load, store, emit, emit_mem, output_append,
                                 call_counts, observe)
            block_key = (function_name, block_label)
            if self._block_start[block_key] == pc:
                handler = _count_block_entry(block_counts, block_key, handler)
            handlers.append(handler)
        return handlers

    def _instruction_maker(self, pc: int, function_name: str, inst: Instruction):
        """Build the cached *maker* for one static instruction.

        Everything derivable from the static program — opcode semantics,
        operand slots, width wrap, packed trace metas, successor pcs —
        is resolved here, once per ``Machine``.  The returned maker
        ``make(regs, load, store, emit, emit_mem, output_append,
        call_counts, observe)`` only binds a run's state into a handler
        closure; a second ``run()`` therefore performs zero handler
        compilation.
        """
        op = inst.op
        kind = inst.kind
        width = inst.width
        uid = inst.uid
        next_pc = pc + 1
        di = -1 if inst.dest is None or inst.dest.index == 31 else inst.dest.index
        # Bind globals used on the hot path into closure cells: a cell load is
        # cheaper than a global dictionary lookup on every dynamic instruction.
        wrap = wrap_to_width
        signed64 = to_signed
        # The per-record flag byte is a compile-time constant per handler
        # (the only dynamic bit, a conditional branch's direction, selects
        # between two precomputed metas), so emission is a single call into
        # the shared columnar append path.
        base_meta = uid << 8

        if kind is OpKind.ALU or kind is OpKind.MUL or kind is OpKind.LOGICAL or kind is OpKind.SHIFT:
            fn = _ARITH[op]
            ai, av = _operand_slot(inst.srcs[0])
            bi, bv = _operand_slot(inst.srcs[1])
            meta = base_meta | FLAG_RESULT | 2 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                if emit is None and observe is None:

                    def handler() -> int:
                        a = regs[ai] if ai >= 0 else av
                        b = regs[bi] if bi >= 0 else bv
                        if di >= 0:
                            regs[di] = fn(a, b, width)
                        return next_pc

                else:

                    def handler() -> int:
                        a = regs[ai] if ai >= 0 else av
                        b = regs[bi] if bi >= 0 else bv
                        result = fn(a, b, width)
                        if di >= 0:
                            regs[di] = result
                        if observe is not None:
                            observe(uid, result)
                        if emit is not None:
                            emit(meta, (a, b, result))
                        return next_pc

                return handler

            return make

        if kind is OpKind.COMPARE:
            cmp = _COMPARE[op]
            ai, av = _operand_slot(inst.srcs[0])
            bi, bv = _operand_slot(inst.srcs[1])
            meta = base_meta | FLAG_RESULT | 2 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                if emit is None and observe is None:

                    def handler() -> int:
                        a = regs[ai] if ai >= 0 else av
                        b = regs[bi] if bi >= 0 else bv
                        if di >= 0:
                            regs[di] = cmp(a, b)
                        return next_pc

                else:

                    def handler() -> int:
                        a = regs[ai] if ai >= 0 else av
                        b = regs[bi] if bi >= 0 else bv
                        result = cmp(a, b)
                        if di >= 0:
                            regs[di] = result
                        if observe is not None:
                            observe(uid, result)
                        if emit is not None:
                            emit(meta, (a, b, result))
                        return next_pc

                return handler

            return make

        if kind is OpKind.CMOV:
            take_on_zero = op is Opcode.CMOVEQ
            ci, cv = _operand_slot(inst.srcs[0])
            vi, vv = _operand_slot(inst.srcs[1])
            meta = base_meta | FLAG_RESULT | 3 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                if emit is None and observe is None:

                    def handler() -> int:
                        cond = regs[ci] if ci >= 0 else cv
                        value = regs[vi] if vi >= 0 else vv
                        old = regs[di] if di >= 0 else 0
                        take = cond == 0 if take_on_zero else cond != 0
                        if di >= 0:
                            regs[di] = wrap(value, width) if take else old
                        return next_pc

                else:

                    def handler() -> int:
                        cond = regs[ci] if ci >= 0 else cv
                        value = regs[vi] if vi >= 0 else vv
                        old = regs[di] if di >= 0 else 0
                        take = cond == 0 if take_on_zero else cond != 0
                        result = wrap(value, width) if take else old
                        if di >= 0:
                            regs[di] = result
                        if observe is not None:
                            observe(uid, result)
                        if emit is not None:
                            emit(meta, (cond, value, old, result))
                        return next_pc

                return handler

            return make

        if kind is OpKind.MASK or kind is OpKind.EXTEND:
            mask = _MASK[op]
            ai, av = _operand_slot(inst.srcs[0])
            meta = base_meta | FLAG_RESULT | 1 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                if emit is None and observe is None:

                    def handler() -> int:
                        a = regs[ai] if ai >= 0 else av
                        if di >= 0:
                            regs[di] = mask(a)
                        return next_pc

                else:

                    def handler() -> int:
                        a = regs[ai] if ai >= 0 else av
                        result = mask(a)
                        if di >= 0:
                            regs[di] = result
                        if observe is not None:
                            observe(uid, result)
                        if emit is not None:
                            emit(meta, (a, result))
                        return next_pc

                return handler

            return make

        if kind is OpKind.MOVE:
            if op is Opcode.LI:
                ai, av = _operand_slot(inst.srcs[0])
                meta = base_meta | FLAG_RESULT

                def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                    def handler() -> int:
                        result = signed64(regs[ai]) if ai >= 0 else signed64(av)
                        if di >= 0:
                            regs[di] = result
                        if observe is not None:
                            observe(uid, result)
                        if emit is not None:
                            emit(meta, (result,))
                        return next_pc

                    return handler

                return make
            if op is Opcode.MOV:
                ai, av = _operand_slot(inst.srcs[0])
                meta = base_meta | FLAG_RESULT | 1 << 4
                if ai >= 0:
                    # Register values are already signed; store as-is.
                    def make(regs, load, store, emit, emit_mem, output_append, call_counts,
                             observe):
                        def handler() -> int:
                            a = regs[ai]
                            if di >= 0:
                                regs[di] = a
                            if observe is not None:
                                observe(uid, a)
                            if emit is not None:
                                emit(meta, (a, a))
                            return next_pc

                        return handler

                    return make
                # Immediate source: the reference loop records the raw bit
                # pattern but writes it through to_signed — precompute both.
                stored = signed64(av)

                def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                    def handler() -> int:
                        if di >= 0:
                            regs[di] = stored
                        if observe is not None:
                            observe(uid, av)
                        if emit is not None:
                            emit(meta, (av, av))
                        return next_pc

                    return handler

                return make
            # LDA
            ai, av = _operand_slot(inst.srcs[0])
            bi, bv = _operand_slot(inst.srcs[1])
            meta = base_meta | FLAG_RESULT | 1 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                def handler() -> int:
                    a = regs[ai] if ai >= 0 else av
                    offset = regs[bi] if bi >= 0 else bv
                    result = wrap(a + offset, Width.QUAD)
                    if di >= 0:
                        regs[di] = result
                    if observe is not None:
                        observe(uid, result)
                    if emit is not None:
                        emit(meta, (a, result))
                    return next_pc

                return handler

            return make

        if kind is OpKind.LOAD:
            ai, av = _operand_slot(inst.srcs[0])
            bi, bv = _operand_slot(inst.srcs[1])
            memory_width = inst.memory_width
            signed = op in (Opcode.LDW, Opcode.LDQ)
            meta = base_meta | FLAG_RESULT | FLAG_MEM | 1 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                if emit is None and observe is None:

                    def handler() -> int:
                        base = regs[ai] if ai >= 0 else av
                        offset = regs[bi] if bi >= 0 else bv
                        if di >= 0:
                            regs[di] = load((base + offset) & _UINT64, memory_width, signed)
                        return next_pc

                else:

                    def handler() -> int:
                        base = regs[ai] if ai >= 0 else av
                        offset = regs[bi] if bi >= 0 else bv
                        mem_address = (base + offset) & _UINT64
                        result = load(mem_address, memory_width, signed)
                        if di >= 0:
                            regs[di] = result
                        if observe is not None:
                            observe(uid, result)
                        if emit_mem is not None:
                            emit_mem(meta, (base, result), mem_address)
                        return next_pc

                return handler

            return make

        if kind is OpKind.STORE:
            vi, vv = _operand_slot(inst.srcs[0])
            ai, av = _operand_slot(inst.srcs[1])
            bi, bv = _operand_slot(inst.srcs[2])
            memory_width = inst.memory_width
            meta = base_meta | FLAG_MEM | 2 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                if emit_mem is None:

                    def handler() -> int:
                        value = regs[vi] if vi >= 0 else vv
                        base = regs[ai] if ai >= 0 else av
                        offset = regs[bi] if bi >= 0 else bv
                        store((base + offset) & _UINT64, value, memory_width)
                        return next_pc

                else:

                    def handler() -> int:
                        value = regs[vi] if vi >= 0 else vv
                        base = regs[ai] if ai >= 0 else av
                        offset = regs[bi] if bi >= 0 else bv
                        mem_address = (base + offset) & _UINT64
                        store(mem_address, value, memory_width)
                        emit_mem(meta, (value, base), mem_address)
                        return next_pc

                return handler

            return make

        if kind is OpKind.BRANCH:
            taken_pc = self._block_start.get((function_name, inst.target))
            if taken_pc is None:
                # Malformed (or dead) branch to a pruned label: defer the
                # lookup to execution so a never-taken branch behaves exactly
                # like the reference loop, and a taken one fails identically.
                block_start = self._block_start
                target = inst.target
                if op is Opcode.BR:

                    def make(regs, load, store, emit, emit_mem, output_append, call_counts,
                             observe):
                        def handler() -> int:
                            return block_start[(function_name, target)]

                        return handler

                    return make
                pred = _BRANCH[op]
                ci, cv = _operand_slot(inst.srcs[0])
                meta_not_taken = base_meta | _NOT_TAKEN | 1 << 4

                def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                    def handler() -> int:
                        cond = regs[ci] if ci >= 0 else cv
                        if pred(cond):
                            return block_start[(function_name, target)]
                        if emit is not None:
                            emit(meta_not_taken, (cond,))
                        return next_pc

                    return handler

                return make
            if op is Opcode.BR:
                meta = base_meta | _TAKEN

                def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                    if emit is None:

                        def handler() -> int:
                            return taken_pc

                    else:

                        def handler() -> int:
                            emit(meta, ())
                            return taken_pc

                    return handler

                return make
            pred = _BRANCH[op]
            ci, cv = _operand_slot(inst.srcs[0])
            meta_taken = base_meta | _TAKEN | 1 << 4
            meta_not_taken = base_meta | _NOT_TAKEN | 1 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                if emit is None:

                    def handler() -> int:
                        cond = regs[ci] if ci >= 0 else cv
                        return taken_pc if pred(cond) else next_pc

                else:

                    def handler() -> int:
                        cond = regs[ci] if ci >= 0 else cv
                        if pred(cond):
                            emit(meta_taken, (cond,))
                            return taken_pc
                        emit(meta_not_taken, (cond,))
                        return next_pc

                return handler

            return make

        if kind is OpKind.CALL:
            return_address = self.address_of_index(pc + 1)
            target = inst.target
            target_pc = self._function_entry.get(target)
            if target_pc is None:
                # Dead call to a removed function: resolve at execution so
                # the failure (and its KeyError) matches the reference loop,
                # after the return-address write exactly as the reference
                # loop orders it.
                function_entry = self._function_entry

                def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                    def handler() -> int:
                        if di >= 0:
                            regs[di] = return_address
                        return function_entry[target]

                    return handler

                return make
            meta = base_meta | FLAG_RESULT | _TAKEN

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                def handler() -> int:
                    if di >= 0:
                        regs[di] = return_address
                    call_counts[target] = call_counts.get(target, 0) + 1
                    if observe is not None:
                        observe(uid, return_address)
                    if emit is not None:
                        emit(meta, (return_address,))
                    return target_pc

                return handler

            return make

        if kind is OpKind.RETURN:
            ai, av = _operand_slot(inst.srcs[0])
            index_of_address = self.index_of_address
            stop_address = self._stop_address
            meta = base_meta | _TAKEN | 1 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                def handler() -> int:
                    address = regs[ai] if ai >= 0 else av
                    if address == stop_address:
                        if emit is not None:
                            emit(meta, (address,))
                        return _HALT_PC
                    return_pc = index_of_address(address)
                    if emit is not None:
                        emit(meta, (address,))
                    return return_pc

                return handler

            return make

        if kind is OpKind.HALT:
            meta = base_meta

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                def handler() -> int:
                    if emit is not None:
                        emit(meta, ())
                    return _HALT_PC

                return handler

            return make

        if kind is OpKind.OUTPUT:
            vi, vv = _operand_slot(inst.srcs[0])
            meta = base_meta | 1 << 4

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                def handler() -> int:
                    value = regs[vi] if vi >= 0 else vv
                    output_append(value)
                    if emit is not None:
                        emit(meta, (value,))
                    return next_pc

                return handler

            return make

        if kind is OpKind.NOP:
            meta = base_meta

            def make(regs, load, store, emit, emit_mem, output_append, call_counts, observe):
                if emit is None:

                    def handler() -> int:
                        return next_pc

                else:

                    def handler() -> int:
                        emit(meta, ())
                        return next_pc

                return handler

            return make

        raise SimulationError(f"cannot execute {inst}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Register access
    # ------------------------------------------------------------------
    @staticmethod
    def _read(regs: list[int], operand) -> int:
        if isinstance(operand, Imm):
            return operand.value
        if operand.index == 31:
            return 0
        return regs[operand.index]

    @staticmethod
    def _write(regs: list[int], dest: Optional[Reg], value: int) -> None:
        if dest is None or dest.index == 31:
            return
        regs[dest.index] = to_signed(value)
