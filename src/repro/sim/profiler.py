"""Value profiling infrastructure (Calder-style top-value tables).

Section 3.3 of the paper adopts the value-profiling scheme of Calder et
al.: at each profiling point a fixed-size table of (value, count) pairs is
maintained; when the table fills up, the least frequently used entries are
periodically evicted so new values can enter.  A separate counter records
the total number of executions of the profiling point.

The profiler plugs into :class:`repro.sim.machine.Machine` through the
``ValueObserver`` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ValueTable", "ValueProfiler"]


@dataclass
class ValueTable:
    """Fixed-size value table for a single profiling point."""

    capacity: int = 16
    clean_interval: int = 256
    total: int = 0
    entries: dict[int, int] = field(default_factory=dict)
    _since_clean: int = 0

    def observe(self, value: int) -> None:
        """Record one observation of ``value``."""
        self.total += 1
        self._since_clean += 1
        if value in self.entries:
            self.entries[value] += 1
        elif len(self.entries) < self.capacity:
            self.entries[value] = 1
        # When the table is full the value is ignored (per Calder's scheme);
        # the periodic cleaning below makes room for new values.
        if self._since_clean >= self.clean_interval:
            self._clean()

    def _clean(self) -> None:
        """Evict the least frequently used half of the table."""
        self._since_clean = 0
        if len(self.entries) < self.capacity:
            return
        ranked = sorted(self.entries.items(), key=lambda item: item[1], reverse=True)
        self.entries = dict(ranked[: max(1, self.capacity // 2)])

    # ------------------------------------------------------------------
    # Queries used by VRS
    # ------------------------------------------------------------------
    @property
    def covered(self) -> int:
        """Number of observations represented in the table."""
        return sum(self.entries.values())

    def observed_range(self) -> tuple[int, int] | None:
        """(min, max) over the values retained in the table, or None."""
        if not self.entries:
            return None
        values = list(self.entries)
        return min(values), max(values)

    def dominant_value(self) -> tuple[int, float] | None:
        """Most frequent value and its frequency relative to ``total``."""
        if not self.entries or self.total == 0:
            return None
        value, count = max(self.entries.items(), key=lambda item: item[1])
        return value, count / self.total

    def range_frequency(self, low: int, high: int) -> float:
        """Estimated fraction of executions whose value lies in [low, high].

        The estimate is conservative: observations that fell out of the
        table are assumed to lie *outside* the range.
        """
        if self.total == 0:
            return 0.0
        inside = sum(count for value, count in self.entries.items() if low <= value <= high)
        return inside / self.total


class ValueProfiler:
    """Profiles the result values of a chosen set of instructions."""

    def __init__(self, watched_uids: set[int], capacity: int = 16, clean_interval: int = 256) -> None:
        self.watched_uids = set(watched_uids)
        self.capacity = capacity
        self.clean_interval = clean_interval
        self.tables: dict[int, ValueTable] = {}

    def observe(self, uid: int, value: int) -> None:
        table = self.tables.get(uid)
        if table is None:
            table = ValueTable(capacity=self.capacity, clean_interval=self.clean_interval)
            self.tables[uid] = table
        table.observe(value)

    def table(self, uid: int) -> ValueTable | None:
        return self.tables.get(uid)

    def profiled_points(self) -> int:
        """Number of watched points that executed at least once."""
        return len(self.tables)
