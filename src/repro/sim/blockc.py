"""Block compiler: straight-line Python per basic block.

The third (and default) dispatch tier of :class:`~repro.sim.machine.Machine`.
Where the *fast* tier compiles one Python closure per static instruction and
pays a dispatch (list index + call), a limit check and a trace-emission call
per *dynamic* instruction, this tier generates specialized Python **source**
for every basic block of the program — instruction semantics inlined in
order, register accesses hoisted into SSA locals, immediates/branch targets/
call return addresses baked in as literals — compiles it once per
:class:`~repro.ir.Program` with :func:`compile`/``exec``, and drives a
block-level hot loop, so dispatch, fetch/decode and the dynamic-instruction
limit check amortize over whole blocks.

Trace emission is block-batched.  At compile time every block's packed meta
words (``uid << 8 | flags``, the exact encoding of
:func:`repro.sim.trace.pack_record`) are precomputed as ``array('q')``
*templates*; per execution the generated code appends a whole template with
one ``array.extend`` and fills only the dynamic value arena — the block's
values gathered into a single tuple and appended with one ``extend`` through
:meth:`Trace.block_emitters`, whose ``spill_values`` closure provides the
same exact int64-overflow fallback the per-record emitters use.  A block
ending in a conditional branch gets two templates (taken / not taken) that
differ only in the final meta's flag bits.

Compiled programs carry **no per-run state**: the generated module defines a
single ``bind(...)`` factory taking the run's registers, memory accessors,
output/counter sinks and trace emitters, whose nested unit functions close
over those arguments — binding a run is pure function creation, no source
generation and no ``compile()``.  The :class:`BlockProgram` (source, bind
factory, constant pool, per-entry instruction counts) is cached on the
:class:`Machine` and shared across runs.

Memory traffic is specialized too: the paged little-endian layout of
:class:`~repro.sim.memory.Memory` is inlined for accesses that stay inside
one materialized page (a dict probe, a slice and ``int.from_bytes`` /
``int.to_bytes``), with the bound ``Memory.load``/``store`` methods kept as
the bit-identical slow path for page-crossing or first-touch accesses.

Compilation **units** are the maximal straight-line spans the simulator can
enter: one per basic-block start plus one per call-return site (the
instruction after a ``jsr``, which a ``ret`` re-enters mid-block).  A unit
ends at the first control-flow instruction or at the next entry point
(fallthrough).  Every unit has a fixed dynamic length, which is what lets
the driver hoist the instruction-limit check to block granularity.

Semantics, trace contents and failure behaviour are locked bit-for-bit
against the reference and fast tiers by ``tests/test_sim_machine.py`` and
``tests/test_trace_columnar.py``.  This module is part of the simulator-side
code fingerprint (``repro/experiments/store.py``), so editing the compiler
retires all stored binary trace snapshots instead of replaying stale ones.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..isa import Imm, Instruction, Opcode, OpKind, Width, to_signed
from .memory import _PAGE_MASK, _PAGE_SHIFT, _PAGE_SIZE
from .trace import FLAG_MEM, FLAG_RESULT, FLAG_TAKEN, FLAG_TAKEN_TRUE

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .machine import Machine

__all__ = ["BlockProgram", "compile_blocks"]

_TAKEN = FLAG_TAKEN | FLAG_TAKEN_TRUE
_NOT_TAKEN = FLAG_TAKEN

_UINT64 = (1 << 64) - 1
_INT64_MAX = (1 << 63) - 1

#: Instruction kinds that end a compilation unit.
_CONTROL_KINDS = (OpKind.BRANCH, OpKind.CALL, OpKind.RETURN, OpKind.HALT)

#: Names bound to the four :class:`Width` members inside ``bind``.
_WIDTH_NAMES = {Width.BYTE: "_W8", Width.HALF: "_W16", Width.WORD: "_W32", Width.QUAD: "_W64"}


def _wrap_expr(expr: str, width: Width) -> str:
    """Inline form of :func:`~repro.isa.widths.wrap_to_width`.

    ``((x & mask) ^ half) - half`` sign-extends the masked value — the
    same mapping as the mask/compare implementation in ``wrap_to_width``,
    verified bit-for-bit by the differential tests.
    """
    mask = (1 << width.value) - 1
    half = 1 << (width.value - 1)
    return f"((({expr}) & {mask:#x} ^ {half:#x}) - {half:#x})"


def _sext_expr(expr: str, bits: int) -> str:
    """Inline form of :func:`~repro.isa.widths.to_signed_n`."""
    mask = (1 << bits) - 1
    half = 1 << (bits - 1)
    return f"((({expr}) & {mask:#x} ^ {half:#x}) - {half:#x})"


#: op → f(a, b, width) producing the inline expression of the opcode's
#: two-operand semantics (mirrors ``ARITHMETIC_SEMANTICS``).
_ARITH_EXPR: dict[Opcode, Callable[[str, str, Width], str]] = {
    Opcode.ADD: lambda a, b, w: _wrap_expr(f"{a} + {b}", w),
    Opcode.SUB: lambda a, b, w: _wrap_expr(f"{a} - {b}", w),
    Opcode.MUL: lambda a, b, w: _wrap_expr(f"{a} * {b}", w),
    Opcode.AND: lambda a, b, w: _wrap_expr(f"{a} & {b}", w),
    Opcode.OR: lambda a, b, w: _wrap_expr(f"{a} | {b}", w),
    Opcode.XOR: lambda a, b, w: _wrap_expr(f"{a} ^ {b}", w),
    Opcode.BIC: lambda a, b, w: _wrap_expr(f"{a} & ~{b}", w),
    Opcode.SLL: lambda a, b, w: _wrap_expr(f"{a} << ({b} & 63)", w),
    Opcode.SRL: lambda a, b, w: _wrap_expr(f"({a} & {_UINT64:#x}) >> ({b} & 63)", w),
    Opcode.SRA: lambda a, b, w: _wrap_expr(f"{a} >> ({b} & 63)", w),
}

#: op → f(a, b) for comparisons (mirrors ``COMPARE_SEMANTICS``).
_COMPARE_EXPR: dict[Opcode, Callable[[str, str], str]] = {
    Opcode.CMPEQ: lambda a, b: f"(1 if {a} == {b} else 0)",
    Opcode.CMPNE: lambda a, b: f"(1 if {a} != {b} else 0)",
    Opcode.CMPLT: lambda a, b: f"(1 if {a} < {b} else 0)",
    Opcode.CMPLE: lambda a, b: f"(1 if {a} <= {b} else 0)",
    Opcode.CMPULT: lambda a, b: f"(1 if ({a} & {_UINT64:#x}) < ({b} & {_UINT64:#x}) else 0)",
    Opcode.CMPULE: lambda a, b: f"(1 if ({a} & {_UINT64:#x}) <= ({b} & {_UINT64:#x}) else 0)",
}

#: op → f(a) for masks and sign extension (mirrors ``MASK_SEMANTICS``).
_MASK_EXPR: dict[Opcode, Callable[[str], str]] = {
    Opcode.MSKB: lambda a: f"({a} & 0xff)",
    Opcode.MSKW: lambda a: f"({a} & 0xffff)",
    Opcode.MSKL: lambda a: f"({a} & 0xffffffff)",
    Opcode.SEXTB: lambda a: _sext_expr(a, 8),
    Opcode.SEXTW: lambda a: _sext_expr(a, 16),
    Opcode.SEXTL: lambda a: _sext_expr(a, 32),
}

#: op → f(cond) for conditional-branch predicates (mirrors ``BRANCH_SEMANTICS``).
_PRED_EXPR: dict[Opcode, Callable[[str], str]] = {
    Opcode.BEQ: lambda c: f"{c} == 0",
    Opcode.BNE: lambda c: f"{c} != 0",
    Opcode.BLT: lambda c: f"{c} < 0",
    Opcode.BLE: lambda c: f"{c} <= 0",
    Opcode.BGT: lambda c: f"{c} > 0",
    Opcode.BGE: lambda c: f"{c} >= 0",
}

#: Inline form of ``Trace``'s unsigned→signed address reinterpretation.
_ENCODE_MEM = f"({{m}} - {1 << 64} if {{m}} > {_INT64_MAX} else {{m}})"


@dataclass
class BlockProgram:
    """One compiled program: shareable across every run of a ``Machine``.

    ``bind`` is the generated per-run factory; ``consts`` the constant
    pool it unpacks (lookup helpers, :class:`Width` members, meta
    templates); ``lengths`` maps each entry pc to its unit's fixed
    dynamic instruction count (0 for non-entry pcs); ``source`` the
    generated Python text (deterministic, useful for debugging and
    covered by the simulator code fingerprint via this module's source).
    """

    bind: Callable
    consts: tuple
    lengths: list[int]
    entry_points: tuple[int, ...]
    source: str
    collect_trace: bool


class _UnitWriter:
    """Codegen state for one compilation unit (SSA locals, values, metas)."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.current: dict[int, str] = {}
        self.written: dict[int, str] = {}
        self.values: list[str] = []
        self.mems: list[str] = []
        self.metas: list[int] = []
        self._temp = 0

    # -- registers ------------------------------------------------------
    def read(self, index: int) -> str:
        if index == 31:
            return "0"
        name = self.current.get(index)
        if name is None:
            name = f"r{index}"
            self.lines.append(f"{name} = regs[{index}]")
            self.current[index] = name
        return name

    def operand(self, operand) -> str:
        if isinstance(operand, Imm):
            return f"({operand.value})"
        if operand.index == 31:
            return "0"
        return self.read(operand.index)

    def assign(self, expr: str) -> str:
        name = f"t{self._temp}"
        self._temp += 1
        self.lines.append(f"{name} = {expr}")
        return name

    def write(self, dest, name: str) -> None:
        if dest is None or dest.index == 31:
            return
        self.current[dest.index] = name
        self.written[dest.index] = name

    def temp_name(self, prefix: str) -> str:
        name = f"{prefix}{self._temp}"
        self._temp += 1
        return name

    # -- epilogue pieces ------------------------------------------------
    def writeback_lines(self) -> list[str]:
        return [f"regs[{index}] = {name}" for index, name in sorted(self.written.items())]

    def emission_lines(self) -> list[str]:
        """Arena + memory-column appends (rows templates are arm-specific)."""
        lines = []
        if self.values:
            lines.append(f"_v = ({', '.join(self.values)},)")
            lines.append("try:")
            lines.append("    arena_extend(_v)")
            lines.append("except OverflowError:")
            lines.append("    spill(_v)")
        for name in self.mems:
            lines.append(f"mem_append({_ENCODE_MEM.format(m=name)})")
        return lines


def _gen_straightline(
    unit: _UnitWriter,
    inst: Instruction,
    trace: bool,
    mutate: Callable[[Instruction, str], str] | None = None,
) -> None:
    """Emit one non-control instruction into the unit.

    Mirrors the fast tier's per-kind handlers instruction for instruction:
    the same operand resolution, the same result normalization, the same
    per-record meta and value tuple.

    ``mutate`` is the fault-injection seam used by the lockstep
    co-execution harness (:mod:`repro.coexec`): it receives each
    result-producing instruction together with the generated result
    expression and returns the expression to compile — normally
    unchanged, corrupted for one seeded instruction.  It applies to the
    single-expression kinds (ALU/MUL/LOGICAL/SHIFT, COMPARE, CMOV,
    MASK/EXTEND and LDA); the mutated value flows into the register
    writeback, the trace record and every later use inside the unit,
    exactly as a miscompiled semantics bug would.
    """
    op = inst.op
    kind = inst.kind
    width = inst.width
    base_meta = inst.uid << 8

    if kind in (OpKind.ALU, OpKind.MUL, OpKind.LOGICAL, OpKind.SHIFT):
        a = unit.operand(inst.srcs[0])
        b = unit.operand(inst.srcs[1])
        expr = _ARITH_EXPR[op](a, b, width)
        if mutate is not None:
            expr = mutate(inst, expr)
        result = unit.assign(expr)
        unit.write(inst.dest, result)
        if trace:
            unit.values += [a, b, result]
            unit.metas.append(base_meta | FLAG_RESULT | 2 << 4)
        return

    if kind is OpKind.COMPARE:
        a = unit.operand(inst.srcs[0])
        b = unit.operand(inst.srcs[1])
        expr = _COMPARE_EXPR[op](a, b)
        if mutate is not None:
            expr = mutate(inst, expr)
        result = unit.assign(expr)
        unit.write(inst.dest, result)
        if trace:
            unit.values += [a, b, result]
            unit.metas.append(base_meta | FLAG_RESULT | 2 << 4)
        return

    if kind is OpKind.CMOV:
        cond = unit.operand(inst.srcs[0])
        value = unit.operand(inst.srcs[1])
        old = unit.read(inst.dest.index) if inst.dest is not None else "0"
        test = "==" if op is Opcode.CMOVEQ else "!="
        expr = f"({_wrap_expr(value, width)} if {cond} {test} 0 else {old})"
        if mutate is not None:
            expr = mutate(inst, expr)
        result = unit.assign(expr)
        unit.write(inst.dest, result)
        if trace:
            unit.values += [cond, value, old, result]
            unit.metas.append(base_meta | FLAG_RESULT | 3 << 4)
        return

    if kind in (OpKind.MASK, OpKind.EXTEND):
        a = unit.operand(inst.srcs[0])
        expr = _MASK_EXPR[op](a)
        if mutate is not None:
            expr = mutate(inst, expr)
        result = unit.assign(expr)
        unit.write(inst.dest, result)
        if trace:
            unit.values += [a, result]
            unit.metas.append(base_meta | FLAG_RESULT | 1 << 4)
        return

    if kind is OpKind.MOVE:
        if op is Opcode.LI:
            source = inst.srcs[0]
            if isinstance(source, Imm) or source.index == 31:
                raw = source.value if isinstance(source, Imm) else 0
                result = f"({to_signed(raw)})"
            else:
                # Register values already satisfy the signed-64 invariant,
                # so the reference loop's to_signed is the identity here.
                result = unit.read(source.index)
            unit.write(inst.dest, result)
            if trace:
                unit.values.append(result)
                unit.metas.append(base_meta | FLAG_RESULT)
            return
        if op is Opcode.MOV:
            source = inst.srcs[0]
            if isinstance(source, Imm) or source.index == 31:
                # The trace records the raw bit pattern; the register
                # write normalizes to signed — both baked as constants.
                raw = source.value if isinstance(source, Imm) else 0
                unit.write(inst.dest, f"({to_signed(raw)})")
                if trace:
                    unit.values += [f"({raw})", f"({raw})"]
                    unit.metas.append(base_meta | FLAG_RESULT | 1 << 4)
                return
            a = unit.read(source.index)
            unit.write(inst.dest, a)
            if trace:
                unit.values += [a, a]
                unit.metas.append(base_meta | FLAG_RESULT | 1 << 4)
            return
        # LDA
        a = unit.operand(inst.srcs[0])
        offset = unit.operand(inst.srcs[1])
        expr = _wrap_expr(f"{a} + {offset}", Width.QUAD)
        if mutate is not None:
            expr = mutate(inst, expr)
        result = unit.assign(expr)
        unit.write(inst.dest, result)
        if trace:
            unit.values += [a, result]
            unit.metas.append(base_meta | FLAG_RESULT | 1 << 4)
        return

    if kind is OpKind.LOAD:
        base = unit.operand(inst.srcs[0])
        offset = unit.operand(inst.srcs[1])
        address = unit.temp_name("m")
        unit.lines.append(f"{address} = ({base} + {offset}) & {_UINT64:#x}")
        signed = op in (Opcode.LDW, Opcode.LDQ)
        width = inst.memory_width
        nbytes = width.bytes
        # Inline the paged-memory fast path (same layout as Memory.load:
        # lazily materialized zero-filled little-endian pages).  Accesses
        # that cross a page boundary — or touch a page not yet
        # materialized — take the bound Memory.load slow path, which is
        # bit-identical by construction.
        page = unit.temp_name("p")
        off_in_page = unit.temp_name("o")
        result = unit.temp_name("t")
        unit.lines += [
            f"{off_in_page} = {address} & {_PAGE_MASK}",
            f"{page} = pages_get({address} >> {_PAGE_SHIFT})",
            f"if {page} is None or {off_in_page} > {_PAGE_SIZE - nbytes}:",
            f"    {result} = load({address}, {_WIDTH_NAMES[width]}, {signed})",
            "else:",
        ]
        raw = f"_ifb({page}[{off_in_page}:{off_in_page} + {nbytes}], 'little')"
        if signed:
            unit.lines.append(f"    {result} = {_sext_expr(raw, width.bits)}")
        else:
            unit.lines.append(f"    {result} = {raw}")
        unit.write(inst.dest, result)
        if trace:
            unit.values += [base, result]
            unit.mems.append(address)
            unit.metas.append(base_meta | FLAG_RESULT | FLAG_MEM | 1 << 4)
        return

    if kind is OpKind.STORE:
        value = unit.operand(inst.srcs[0])
        base = unit.operand(inst.srcs[1])
        offset = unit.operand(inst.srcs[2])
        address = unit.temp_name("m")
        unit.lines.append(f"{address} = ({base} + {offset}) & {_UINT64:#x}")
        width = inst.memory_width
        nbytes = width.bytes
        mask = (1 << width.bits) - 1
        page = unit.temp_name("p")
        off_in_page = unit.temp_name("o")
        unit.lines += [
            f"{off_in_page} = {address} & {_PAGE_MASK}",
            f"if {off_in_page} > {_PAGE_SIZE - nbytes}:",
            f"    store({address}, {value}, {_WIDTH_NAMES[width]})",
            "else:",
            f"    {page} = pages_get({address} >> {_PAGE_SHIFT})",
            f"    if {page} is None:",
            f"        {page} = page_for({address})",
            f"    {page}[{off_in_page}:{off_in_page} + {nbytes}]"
            f" = (({value}) & {mask:#x}).to_bytes({nbytes}, 'little')",
        ]
        if trace:
            unit.values += [value, base]
            unit.mems.append(address)
            unit.metas.append(base_meta | FLAG_MEM | 2 << 4)
        return

    if kind is OpKind.OUTPUT:
        value = unit.operand(inst.srcs[0])
        unit.lines.append(f"output_append({value})")
        if trace:
            unit.values.append(value)
            unit.metas.append(base_meta | 1 << 4)
        return

    if kind is OpKind.NOP:
        if trace:
            unit.metas.append(base_meta)
        return

    raise ValueError(f"cannot block-compile {inst}")  # pragma: no cover


def compile_blocks(
    machine: "Machine",
    collect_trace: bool,
    mutate_result: Callable[[Instruction, str], str] | None = None,
) -> BlockProgram:
    """Compile ``machine.program`` into a :class:`BlockProgram`.

    Pure function of the (flattened) program and ``collect_trace`` — no
    per-run state is consulted, so the result is cached on the machine
    and reused by every subsequent :meth:`Machine.run`.

    ``mutate_result`` is the fault-injection seam for the lockstep
    co-execution harness (see :func:`_gen_straightline`).  Programs
    compiled with a mutator are **never** cached on the machine — the
    caller (``repro.coexec``) holds them privately and binds them to its
    own run state.
    """
    flat = machine._flat
    total = len(flat)
    block_start = machine._block_start
    function_entry = machine._function_entry

    entries = set(block_start.values())
    for pc, (_, _, inst) in enumerate(flat):
        if inst.kind is OpKind.CALL and pc + 1 < total:
            entries.add(pc + 1)
    entry_points = tuple(sorted(pc for pc in entries if pc < total))

    consts: list = [
        machine.index_of_address,
        block_start,
        function_entry,
        Width.BYTE,
        Width.HALF,
        Width.WORD,
        Width.QUAD,
    ]
    const_names = ["_ioa", "_bs", "_fe", "_W8", "_W16", "_W32", "_W64"]

    def intern_template(name: str, metas: list[int]) -> str:
        consts.append(array("q", metas))
        const_names.append(name)
        return name

    lengths = [0] * total
    unit_lines: list[str] = []

    for position, entry in enumerate(entry_points):
        end = entry_points[position + 1] if position + 1 < len(entry_points) else total
        stop = entry
        while stop < end and flat[stop][2].kind not in _CONTROL_KINDS:
            stop += 1
        has_control = stop < end
        if has_control:
            stop += 1  # the control instruction belongs to this unit
        lengths[entry] = stop - entry

        function_name, block_label, _ = flat[entry]
        block_key = (function_name, block_label)
        unit = _UnitWriter()
        if block_start[block_key] == entry:
            unit.lines.append(f"block_counts[{block_key!r}] = _bc({block_key!r}, 0) + 1")

        for pc in range(entry, stop - 1 if has_control else stop):
            _gen_straightline(unit, flat[pc][2], collect_trace, mutate_result)

        tail: list[str] = []
        if not has_control:
            # Fallthrough into the next entry point (or off the program
            # end, which the driver surfaces exactly like the reference
            # loop's past-the-end error).
            if collect_trace:
                template = intern_template(f"_t{entry}", unit.metas)
                tail += [f"rows_extend({template})"]
                tail += unit.emission_lines()
            tail += unit.writeback_lines()
            tail.append(f"return {stop}")
        else:
            last_pc = stop - 1
            inst = flat[last_pc][2]
            kind = inst.kind
            base_meta = inst.uid << 8
            if kind is OpKind.BRANCH:
                tail += _gen_branch_tail(
                    unit, machine, inst, function_name, last_pc, collect_trace, intern_template
                )
            elif kind is OpKind.CALL:
                tail += _gen_call_tail(
                    unit, machine, inst, last_pc, collect_trace, intern_template
                )
            elif kind is OpKind.RETURN:
                address = unit.operand(inst.srcs[0])
                if collect_trace:
                    unit.values.append(address)
                    unit.metas.append(base_meta | _TAKEN | 1 << 4)
                    template = intern_template(f"_t{last_pc}", unit.metas)
                    tail += [f"rows_extend({template})"]
                    tail += unit.emission_lines()
                tail += unit.writeback_lines()
                tail.append(f"if {address} == {machine._stop_address}:")
                tail.append("    return -1")
                tail.append(f"return _ioa({address})")
            else:  # HALT
                if collect_trace:
                    unit.metas.append(base_meta)
                    template = intern_template(f"_t{last_pc}", unit.metas)
                    tail += [f"rows_extend({template})"]
                    tail += unit.emission_lines()
                tail += unit.writeback_lines()
                tail.append("return -1")

        unit_lines.append(f"    def _u{entry}():")
        for line in unit.lines + tail:
            unit_lines.append(f"        {line}")
        unit_lines.append("")

    header = [
        "def bind(regs, load, store, pages_get, page_for, output_append,",
        "         block_counts, call_counts, consts,",
        "         rows_extend, arena_extend, mem_append, spill):",
        "    _bc = block_counts.get",
        "    _cc = call_counts.get",
        "    _ifb = int.from_bytes",
        f"    ({', '.join(const_names)},) = consts",
        "",
    ]
    footer = [f"    _funcs = [None] * {total}"]
    footer += [f"    _funcs[{entry}] = _u{entry}" for entry in entry_points]
    footer.append("    return _funcs")
    source = "\n".join(header + unit_lines + footer) + "\n"

    namespace: dict = {}
    exec(compile(source, "<repro.sim.blockc>", "exec"), namespace)
    return BlockProgram(
        bind=namespace["bind"],
        consts=tuple(consts),
        lengths=lengths,
        entry_points=entry_points,
        source=source,
        collect_trace=collect_trace,
    )


def _gen_branch_tail(
    unit: _UnitWriter,
    machine: "Machine",
    inst: Instruction,
    function_name: str,
    pc: int,
    collect_trace: bool,
    intern_template,
) -> list[str]:
    """Unit tail for a (possibly malformed) branch terminator."""
    base_meta = inst.uid << 8
    next_pc = pc + 1
    taken_pc = machine._block_start.get((function_name, inst.target))
    tail: list[str] = []
    if taken_pc is None:
        # Branch to a pruned label: defer the lookup to execution so a
        # never-taken branch behaves exactly like the reference loop and
        # a taken one raises the identical KeyError (before any emission,
        # matching the per-record tiers' observable order).
        ghost = f"_bs[({function_name!r}, {inst.target!r})]"
        if inst.op is Opcode.BR:
            tail.append(f"return {ghost}")
            return tail
        cond = unit.operand(inst.srcs[0])
        tail.append(f"if {_PRED_EXPR[inst.op](cond)}:")
        tail.append(f"    return {ghost}")
        if collect_trace:
            unit.values.append(cond)
            template = intern_template(
                f"_tN{pc}", unit.metas + [base_meta | _NOT_TAKEN | 1 << 4]
            )
            tail.append(f"rows_extend({template})")
            tail += unit.emission_lines()
        tail += unit.writeback_lines()
        tail.append(f"return {next_pc}")
        return tail
    if inst.op is Opcode.BR:
        if collect_trace:
            unit.metas.append(base_meta | _TAKEN)
            template = intern_template(f"_t{pc}", unit.metas)
            tail.append(f"rows_extend({template})")
            tail += unit.emission_lines()
        tail += unit.writeback_lines()
        tail.append(f"return {taken_pc}")
        return tail
    cond = unit.operand(inst.srcs[0])
    predicate = _PRED_EXPR[inst.op](cond)
    if collect_trace:
        unit.values.append(cond)
        taken_template = intern_template(f"_tT{pc}", unit.metas + [base_meta | _TAKEN | 1 << 4])
        fall_template = intern_template(
            f"_tN{pc}", unit.metas + [base_meta | _NOT_TAKEN | 1 << 4]
        )
        tail += unit.emission_lines()
        tail += unit.writeback_lines()
        tail.append(f"if {predicate}:")
        tail.append(f"    rows_extend({taken_template})")
        tail.append(f"    return {taken_pc}")
        tail.append(f"rows_extend({fall_template})")
        tail.append(f"return {next_pc}")
    else:
        tail += unit.writeback_lines()
        tail.append(f"if {predicate}:")
        tail.append(f"    return {taken_pc}")
        tail.append(f"return {next_pc}")
    return tail


def _gen_call_tail(
    unit: _UnitWriter,
    machine: "Machine",
    inst: Instruction,
    pc: int,
    collect_trace: bool,
    intern_template,
) -> list[str]:
    """Unit tail for a call terminator (return address is a constant)."""
    base_meta = inst.uid << 8
    return_address = machine.address_of_index(pc + 1)
    target = inst.target
    target_pc = machine._function_entry.get(target)
    tail: list[str] = []
    unit.write(inst.dest, f"({return_address})")
    if target_pc is None:
        # Dead call to a removed function: the return-address write lands
        # first (as in both per-record tiers), then the lookup raises the
        # identical KeyError — before any emission or call counting.
        tail += unit.writeback_lines()
        tail.append(f"return _fe[{target!r}]")
        return tail
    if collect_trace:
        unit.values.append(f"({return_address})")
        unit.metas.append(base_meta | FLAG_RESULT | _TAKEN)
        template = intern_template(f"_t{pc}", unit.metas)
        tail.append(f"rows_extend({template})")
        tail += unit.emission_lines()
    tail += unit.writeback_lines()
    tail.append(f"call_counts[{target!r}] = _cc({target!r}, 0) + 1")
    tail.append(f"return {target_pc}")
    return tail
