"""Functional simulation: interpreter, memory, traces and value profiling."""

from .fusedc import (
    PIPELINES,
    FusedOutcome,
    ShapeAggregate,
    default_pipeline,
)
from .machine import (
    CODE_BASE_ADDRESS,
    DISPATCH_TIERS,
    Machine,
    RunResult,
    SimulationError,
    SimulationLimitExceeded,
)
from .memory import Memory, load_program_data
from .profiler import ValueProfiler, ValueTable
from .trace import StaticEntry, StaticInfo, Trace, TraceRecord

__all__ = [
    "CODE_BASE_ADDRESS",
    "DISPATCH_TIERS",
    "PIPELINES",
    "Machine",
    "RunResult",
    "SimulationError",
    "SimulationLimitExceeded",
    "FusedOutcome",
    "ShapeAggregate",
    "default_pipeline",
    "Memory",
    "load_program_data",
    "ValueProfiler",
    "ValueTable",
    "StaticEntry",
    "StaticInfo",
    "Trace",
    "TraceRecord",
]
