"""Sparse byte-addressed memory for the functional simulator."""

from __future__ import annotations

from ..isa import Width
from ..isa.widths import to_signed_n
from ..ir import Program

__all__ = ["Memory", "load_program_data"]

_PAGE_SIZE = 4096
_PAGE_MASK = _PAGE_SIZE - 1
_PAGE_SHIFT = _PAGE_SIZE.bit_length() - 1


class Memory:
    """A sparse, paged, little-endian memory.

    Pages are materialised lazily and zero-filled, so the simulator can use
    a realistic 64-bit address space (globals high, stack higher) without
    allocating it.

    The block-compiled interpreter tier (:mod:`repro.sim.blockc`) inlines
    this layout — page size, mask, byte order, lazy zero-fill — for
    accesses that stay inside one materialized page, falling back to the
    bound :meth:`load`/:meth:`store` methods otherwise; changes here must
    keep that generated fast path equivalent (the differential tests in
    ``tests/test_sim_machine.py`` enforce it).
    """

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------
    def _page(self, address: int) -> bytearray:
        page_number = address >> _PAGE_SHIFT
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``address``."""
        result = bytearray()
        while size > 0:
            page = self._page(address)
            offset = address & _PAGE_MASK
            chunk = min(size, _PAGE_SIZE - offset)
            result += page[offset : offset + chunk]
            address += chunk
            size -= chunk
        return bytes(result)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        index = 0
        size = len(data)
        while index < size:
            page = self._page(address)
            offset = address & _PAGE_MASK
            chunk = min(size - index, _PAGE_SIZE - offset)
            page[offset : offset + chunk] = data[index : index + chunk]
            address += chunk
            index += chunk

    # ------------------------------------------------------------------
    # Typed access
    # ------------------------------------------------------------------
    def load(self, address: int, width: Width, signed: bool) -> int:
        """Load a value of ``width`` bytes; sign- or zero-extend to 64 bits."""
        raw = self.read_bytes(address, width.bytes)
        value = int.from_bytes(raw, "little", signed=False)
        if signed:
            return to_signed_n(value, width.bits)
        return value

    def store(self, address: int, value: int, width: Width) -> None:
        """Store the low ``width`` bytes of ``value``."""
        mask = (1 << width.bits) - 1
        self.write_bytes(address, (value & mask).to_bytes(width.bytes, "little"))

    @property
    def touched_pages(self) -> int:
        """Number of pages that have been materialised."""
        return len(self._pages)


def load_program_data(memory: Memory, program: Program) -> None:
    """Initialise ``memory`` with the program's static data objects."""
    for obj in program.data_objects.values():
        width = obj.element_width
        address = obj.address
        for index, value in enumerate(obj.initial_values):
            memory.store(address + index * width.bytes, value, width)
