"""Binary trace snapshots.

Because the columnar :class:`~repro.sim.trace.Trace` stores its dynamic
stream as flat ``array('q')`` columns, a complete trace serializes to a
compact binary blob: a small JSON header (column lengths, the static side
table, the uid→address map, the exact-overflow side table) followed by the
raw column bytes.  A :class:`SimulationArtifact` wraps a trace together
with the other simulation-side outputs a replay needs (dynamic instruction
count, program output, VRP/VRS statistics), so an analysis-only change —
a new gating policy, a tweaked energy coefficient, a different machine
configuration — can rebuild a full evaluation summary from the snapshot
without a single simulator step (see ``repro/experiments/store.py`` for
the content-addressed snapshot store and ``docs/trace.md`` for the
format).

Snapshots are a local cache format, not an interchange format: the column
byte order is the host's, recorded in the header; a mismatch (or any
structural inconsistency) raises ``ValueError``, which the store treats as
a miss.

Stored snapshots are keyed by a *simulator-side* code fingerprint
(``repro/experiments/store.py``) covering every source file under
``repro/sim`` — including the block compiler (``blockc.py``), whose
generated per-program code is a pure function of those files — so any
change to simulation semantics retires old snapshots instead of replaying
them stale; ``tests/test_block_compiler.py`` locks this down.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from typing import Optional

from ..isa import OpKind, Opcode, Width
from .trace import StaticEntry, StaticInfo, Trace

__all__ = [
    "TRACE_SNAPSHOT_VERSION",
    "SimulationArtifact",
    "encode_artifact",
    "decode_artifact",
]

#: Bump when the snapshot layout or the columnar trace encoding changes;
#: the store keys include this, so old snapshots simply miss.
TRACE_SNAPSHOT_VERSION = 1

_MAGIC = b"RTRC"

#: StaticEntry fields serialized positionally (order is part of the format).
_ENTRY_FIELDS = (
    "uid",
    "opcode",
    "kind",
    "width",
    "functional_unit",
    "latency",
    "energy_class",
    "is_load",
    "is_store",
    "is_branch",
    "is_conditional",
    "is_call",
    "is_return",
    "is_guard",
    "memory_width",
    "num_src_regs",
    "has_dest",
    "src_regs",
    "dest_reg",
    "function",
    "block",
)


@dataclass
class SimulationArtifact:
    """Everything a replay needs that only the simulator can produce."""

    trace: Trace
    instructions: int
    output: list[int]
    vrp: Optional[dict] = None
    vrs: Optional[dict] = None
    runtime_specialization: Optional[dict] = None


def _encode_entry(entry: StaticEntry) -> list:
    row = []
    for name in _ENTRY_FIELDS:
        value = getattr(entry, name)
        if isinstance(value, (Opcode, OpKind)):
            value = value.name
        elif isinstance(value, Width):
            value = int(value)
        elif isinstance(value, tuple):
            value = list(value)
        row.append(value)
    return row


def _decode_entry(row: list) -> StaticEntry:
    data = dict(zip(_ENTRY_FIELDS, row))
    data["opcode"] = Opcode[data["opcode"]]
    data["kind"] = OpKind[data["kind"]]
    data["width"] = Width(data["width"])
    if data["memory_width"] is not None:
        data["memory_width"] = Width(data["memory_width"])
    data["src_regs"] = tuple(data["src_regs"])
    return StaticEntry(**data)


def encode_artifact(artifact: SimulationArtifact) -> bytes:
    """Serialize an artifact (trace + simulation outputs) to bytes."""
    trace = artifact.trace
    rows = trace._rows
    arena = trace._arena
    mem = trace._mem
    addr_col = trace._addr
    next_col = trace._next
    header = {
        "version": TRACE_SNAPSHOT_VERSION,
        "byteorder": sys.byteorder,
        "rows": len(rows),
        "arena": len(arena),
        "mem": len(mem),
        "explicit_addresses": addr_col is not None,
        "address_by_uid": (
            sorted(trace._addr_by_uid.items()) if trace._addr_by_uid is not None else None
        ),
        "big": sorted(trace._big.items()),
        "static": {
            "uid_base": trace.static.uid_base,
            "entries": [
                None if entry is None else _encode_entry(entry)
                for entry in trace.static.entries
            ],
        },
        "instructions": artifact.instructions,
        "output": list(artifact.output),
        "vrp": artifact.vrp,
        "vrs": artifact.vrs,
        "runtime_specialization": artifact.runtime_specialization,
    }
    header_blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [
        _MAGIC,
        TRACE_SNAPSHOT_VERSION.to_bytes(4, "little"),
        len(header_blob).to_bytes(8, "little"),
        header_blob,
        rows.tobytes(),
        arena.tobytes(),
        mem.tobytes(),
    ]
    if addr_col is not None:
        parts.append(addr_col.tobytes())
        parts.append(next_col.tobytes())
    return b"".join(parts)


def decode_artifact(blob: bytes) -> SimulationArtifact:
    """Rebuild an artifact from :func:`encode_artifact` output.

    Raises ``ValueError`` on any structural problem (truncation, foreign
    byte order, unknown version) so callers can treat bad snapshots as
    cache misses.
    """
    if blob[:4] != _MAGIC:
        raise ValueError("not a trace snapshot")
    version = int.from_bytes(blob[4:8], "little")
    if version != TRACE_SNAPSHOT_VERSION:
        raise ValueError(f"trace snapshot version {version} != {TRACE_SNAPSHOT_VERSION}")
    header_len = int.from_bytes(blob[8:16], "little")
    try:
        header = json.loads(blob[16 : 16 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"corrupt trace snapshot header: {error}") from None
    if header["byteorder"] != sys.byteorder:
        raise ValueError("trace snapshot was written on a foreign-endian host")

    static = StaticInfo()
    static.uid_base = header["static"]["uid_base"]
    entries = header["static"]["entries"]
    # Preserve holes exactly: add_entry skips None rows, so pad manually.
    static.entries = [None if row is None else _decode_entry(row) for row in entries]
    static._count = sum(1 for row in entries if row is not None)

    address_by_uid = header["address_by_uid"]
    trace = Trace(
        static=static,
        addresses={uid: addr for uid, addr in address_by_uid}
        if address_by_uid is not None
        else None,
    )
    offset = 16 + header_len
    itemsize = trace._rows.itemsize

    def take(column, count):
        nonlocal offset
        end = offset + count * itemsize
        if end > len(blob):
            raise ValueError("truncated trace snapshot")
        column.frombytes(blob[offset:end])
        offset = end

    take(trace._rows, header["rows"])
    take(trace._arena, header["arena"])
    take(trace._mem, header["mem"])
    if header["explicit_addresses"]:
        from array import array

        addr_col = array("q")
        next_col = array("q")
        take(addr_col, header["rows"])
        take(next_col, header["rows"])
        trace._addr = addr_col
        trace._next = next_col
    trace._big = {index: value for index, value in header["big"]}
    # Cheap structural consistency checks: the arena and the sparse memory
    # column must match the per-record counts encoded in the flag bytes,
    # so a corrupted snapshot misses here instead of crashing a replay.
    if len(trace._arena) != trace.value_offsets[-1]:
        raise ValueError("trace snapshot arena is inconsistent with its flag bytes")
    if len(trace._mem) != trace._mem_prefix_counts()[-1]:
        raise ValueError("trace snapshot memory column is inconsistent with its flag bytes")

    return SimulationArtifact(
        trace=trace,
        instructions=header["instructions"],
        output=list(header["output"]),
        # The JSON header stringified the vrp stat keys; the replay layer
        # (repro.experiments.runner.replay_summary) restores them with the
        # same helper the summary round trip uses.
        vrp=header["vrp"],
        vrs=header["vrs"],
        runtime_specialization=header["runtime_specialization"],
    )
