"""Fused simulate→time→account source tier.

The materialized pipeline runs three passes: the block-compiled simulator
emits a full columnar trace (:mod:`repro.sim.blockc`), the compiled
timing kernel walks it once (:mod:`repro.uarch.tkernel`), and the fused
accountant aggregates it again into record *shapes*
(:meth:`~repro.sim.trace.Trace.shape_counts`).  The trace itself is the
bottleneck: ~26 bytes per dynamic record of peak memory plus two extra
full walks, all to carry information that is consumed exactly once.

This module generates a third source tier that merges all three passes.
For every basic-block unit the block compiler would emit, it emits the
same straight-line simulation code and then, *inline at each
trace-emission point*, the per-record update of the timing kernel
(fetch/dispatch/issue/execute/commit plus caches and the branch
predictor) — with the record's static facts (code address, fetch line,
cache set/tag, latency, functional unit, destination register) folded
into literals at generation time, exactly as ``tkernel`` folds them when
it walks a materialized trace.

Accounting does not need the records at all, only the multiset of record
shapes ``(uid, per-value significant-byte signature)``.  The fused tier
therefore counts *block-level width signatures*: each executed unit folds
the significant-byte sizes of every value it produced into one tuple and
bumps ``counts[sig_tuple] += 1`` in a per-unit dict.  A block re-entered
with an identical operand-width signature is a single dict hit — the
memoization the ROADMAP asks for — and the expansion from signature
tuples to per-record shape keys runs once per *distinct* signature
(cached on the compiled program, so it also persists across runs).  The
expanded :class:`ShapeAggregate` reproduces ``shape_counts`` /
``uid_counts`` / ``width_distribution`` bit-exactly, so the existing
:class:`~repro.power.MultiPolicyEnergyAccountant` and the experiment
summaries consume it unchanged.

The materialized path stays verbatim as the bit-exact oracle;
``repro.coexec.compare_fused`` bisects any disagreement to the exact
record.  See ``docs/fused.md`` for the design notes and the memoization
invariants.
"""

from __future__ import annotations

import os
import re
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..isa import Opcode, OpKind, Width, significant_bytes
from .blockc import (
    _CONTROL_KINDS,
    _PRED_EXPR,
    _UnitWriter,
    _gen_straightline,
)
from .trace import FLAG_RESULT, StaticInfo, _SigCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..uarch.config import MachineConfig
    from ..uarch.ooo import TimingResult
    from .machine import Machine

__all__ = [
    "PIPELINES",
    "FusedOutcome",
    "FusedProgram",
    "ShapeAggregate",
    "compile_fused",
    "default_pipeline",
    "fused_program_for",
    "outcome_from_trace",
    "timing_from_counters",
    "timing_from_probe",
]

#: The pipeline vocabulary accepted by :meth:`Machine.run`, the
#: experiment engine and the CLI.  ``auto`` means "fused unless something
#: needs the records" (snapshot persistence, value observers, …).
PIPELINES = ("auto", "fused", "materialized")

_MATERIALIZED_ALIASES = frozenset({"materialized", "off", "0", "false", "no", "disabled"})


def default_pipeline() -> str:
    """Pipeline choice from ``REPRO_PIPELINE`` (``auto`` when unset).

    Mirrors ``REPRO_SIM_DISPATCH``: ``fused`` forces the fused tier,
    ``materialized`` (or any common falsy spelling) forces the trace
    pipeline, anything else falls back to ``auto``.
    """
    value = os.environ.get("REPRO_PIPELINE", "").strip().lower()
    if value == "fused":
        return "fused"
    if value in _MATERIALIZED_ALIASES and value:
        return "materialized"
    return "auto"


# ----------------------------------------------------------------------
# The shape carrier the fused run produces instead of a Trace
# ----------------------------------------------------------------------
class ShapeAggregate:
    """Trace-shaped view over fused shape counts (no records).

    Implements exactly the surface the analysis consumers touch on a
    materialized :class:`~repro.sim.trace.Trace` — ``shape_counts()``,
    ``uid_counts()``, ``width_distribution()``, ``len()`` and the
    ``static`` table — with the same key formats and the same width
    attribution, so :class:`~repro.power.MultiPolicyEnergyAccountant`
    and :func:`repro.experiments.summary.aggregate_trace` consume it
    unchanged.  Iterating records is impossible by construction and
    raises ``TypeError``.
    """

    __slots__ = ("static", "_shapes", "_length", "_uid_counts")

    def __init__(
        self, static: StaticInfo, shapes: dict[tuple[int, bytes, int], int], length: int
    ) -> None:
        self.static = static
        self._shapes = shapes
        self._length = length
        self._uid_counts: Optional[Counter] = None

    def __len__(self) -> int:
        return self._length

    def shape_counts(self) -> dict[tuple[int, bytes, int], int]:
        """Same key format as :meth:`Trace.shape_counts`."""
        return self._shapes

    def uid_counts(self) -> Counter:
        """Dynamic execution count per static uid (derived from shapes)."""
        if self._uid_counts is None:
            counts: Counter = Counter()
            for (uid, _sigs, _rsig), count in self._shapes.items():
                counts[uid] += count
            self._uid_counts = counts
        return self._uid_counts

    def width_distribution(self) -> dict[Width, int]:
        """Same attribution as :meth:`Trace.width_distribution`."""
        distribution: dict[Width, int] = {width: 0 for width in Width.all_widths()}
        static = self.static
        for uid, count in self.uid_counts().items():
            entry = static[uid]
            width = entry.memory_width if entry.memory_width is not None else entry.width
            distribution[width] += count
        return distribution

    def __iter__(self):
        raise TypeError(
            "fused runs do not materialize trace records; "
            "use the materialized pipeline for record-level access"
        )


@dataclass
class FusedOutcome:
    """What a fused run yields instead of a trace: timing + shapes."""

    timing: "TimingResult"
    shapes: ShapeAggregate


# ----------------------------------------------------------------------
# Compiled fused program
# ----------------------------------------------------------------------
@dataclass
class FusedProgram:
    """A compiled fused program for one (program, machine config) pair.

    ``bind(...)`` returns ``(funcs, collect, finalize)`` where ``funcs``
    mirrors the block compiler's per-entry unit functions, ``collect()``
    flushes the pending run-length counters and returns one
    signature-count dict per *counted* unit (in ``unit_specs`` order)
    and ``finalize()`` snapshots the timing state into the compiled
    kernel's 11-tuple.  ``expand`` turns the signature counts back into
    per-record shape keys, memoized per distinct signature in
    ``key_caches`` (persistent across runs of the same compiled
    program).
    """

    bind: Callable
    consts: tuple
    lengths: list[int]
    entry_points: tuple[int, ...]
    source: str
    config: "MachineConfig"
    probe: bool
    #: Per counted unit: tuple of ``(uid, start, end, has_result)`` record
    #: specs indexing nibbles of that unit's packed value signature.
    unit_specs: tuple
    #: Per counted unit: dict mapping a packed signature to its expanded
    #: tuple of shape keys.
    key_caches: tuple
    static: StaticInfo
    sig_cache: _SigCache
    #: ``static.uid_base`` of the machine that compiled this program.
    #: A machine from an *identical rebuild* of the same IR (the module
    #: cache serves those) has uids shifted by a uniform offset;
    #: ``expand`` translates.
    uid_base: int = 0

    def expand(
        self,
        unit_counts,
        length: int,
        static: Optional[StaticInfo] = None,
        uid_base: Optional[int] = None,
    ) -> ShapeAggregate:
        """Expand per-unit signature counts into per-record shape counts.

        A signature is one int packing each value's significant-byte
        count (1..8) into its own nibble; the record specs carve the
        nibbles back into per-record ``(uid, srcs, result)`` shape keys.
        Pass the running machine's ``static``/``uid_base`` when this
        compiled program came out of the module cache: uids in the
        cached specs are uniformly shifted to the running build's.
        """
        if static is None:
            static = self.static
        delta = 0 if uid_base is None else uid_base - self.uid_base
        shapes: dict[tuple[int, bytes, int], int] = {}
        get = shapes.get
        for counts, specs, cache in zip(unit_counts, self.unit_specs, self.key_caches):
            cache_get = cache.get
            for sig, count in counts.items():
                keys = cache_get(sig)
                if keys is None:
                    keys = tuple(
                        (
                            uid,
                            bytes((sig >> (4 * i)) & 15 for i in range(start, end - 1)),
                            (sig >> (4 * (end - 1))) & 15,
                        )
                        if has_result
                        else (
                            uid,
                            bytes((sig >> (4 * i)) & 15 for i in range(start, end)),
                            -1,
                        )
                        for uid, start, end, has_result in specs
                    )
                    cache[sig] = keys
                if delta:
                    keys = [(uid + delta, sigs, rsig) for uid, sigs, rsig in keys]
                for key in keys:
                    shapes[key] = get(key, 0) + count
        return ShapeAggregate(static, shapes, length)


def timing_from_counters(counters: tuple, instructions: int) -> "TimingResult":
    """Build a :class:`TimingResult` from the kernel's 11-counter tuple.

    Same field mapping as :func:`repro.uarch.tkernel.run_compiled` — the
    fused tier's ``_finalize()`` returns the identical tuple shape.
    """
    from ..uarch.ooo import TimingResult

    (
        cycles,
        lookups,
        mispredictions,
        i_accesses,
        i_misses,
        d_accesses,
        d_misses,
        l2_accesses,
        l2_misses,
        loads,
        stores,
    ) = counters
    return TimingResult(
        cycles=cycles,
        instructions=instructions,
        branch_lookups=lookups,
        branch_mispredictions=mispredictions,
        icache_accesses=i_accesses,
        icache_misses=i_misses,
        dcache_accesses=d_accesses,
        dcache_misses=d_misses,
        l2_accesses=l2_accesses,
        l2_misses=l2_misses,
        loads=loads,
        stores=stores,
    )


def timing_from_probe(snapshot: tuple, instructions: int) -> "TimingResult":
    """Project a per-record probe snapshot onto a prefix TimingResult.

    A probe snapshot is ``(commit_frontier, fetch_cycle, <9 counters>)``
    taken immediately after one record's full update.  Finalizing from it
    reproduces what the compiled kernel returns for the trace prefix that
    ends at that record: a redirect the final record posts is never
    consumed, so it doesn't enter the cycle count on either side.
    """
    commit_frontier, fetch_cycle = snapshot[0], snapshot[1]
    last_commit = commit_frontier if commit_frontier >= 0 else 0
    cycles = (last_commit if last_commit > fetch_cycle else fetch_cycle) + 1
    return timing_from_counters((cycles,) + tuple(snapshot[2:]), instructions)


def outcome_from_trace(trace, config: "MachineConfig") -> FusedOutcome:
    """Materialized-path :class:`FusedOutcome` (the fallback/oracle).

    Used when the fused tier cannot run (mid-unit entry via a computed
    return address, non-``block`` dispatch tier) and by the differential
    suite: the timing comes from the compiled kernel over the real trace
    and the shapes from the trace's own aggregation, so the result is
    bit-identical to what the streaming tier produces on the same run.
    """
    from ..uarch.tkernel import run_compiled

    timing = run_compiled(trace, config)
    shapes = ShapeAggregate(trace.static, dict(trace.shape_counts()), len(trace))
    return FusedOutcome(timing=timing, shapes=shapes)


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------
#: Matches value expressions that are compile-time integer literals —
#: immediates ``(42)``, folded raw constants ``(-5)`` and the hardwired
#: zero register ``0`` — whose significant-byte size folds at codegen.
_CONST_VALUE = re.compile(r"^\(?(-?\d+)\)?$")

#: Matches a register-entry value name emitted by the unit writer
#: (``rN`` is only ever the value ``regs[N]`` held at unit entry), whose
#: significance is already cached in the ``rsig`` list.
_REG_VALUE = re.compile(r"^r(\d+)$")

#: Process-wide source→code-object cache.  ``compile()`` of a fused
#: source dominates cold compile cost (~0.13 s for a suite workload);
#: the generated text is a complete fingerprint of everything that
#: matters (program layout, config literals, probe mode), so identical
#: rebuilds of the same workload hit even across Machine instances —
#: the engine builds a fresh Machine per evaluation.
_CODE_CACHE: dict[str, object] = {}
_CODE_CACHE_LIMIT = 32

_PROBE_LINE = (
    "probe_append((commit_frontier, fetch_cycle, lookups, mispredictions, "
    "i_accesses, i_misses, d_accesses, d_misses, l2_accesses, l2_misses, "
    "loads, stores))"
)

#: Timing-state scalars a counted unit may reassign.  They live in the
#: bind scope; each unit declares ``nonlocal`` for exactly the ones its
#: tail mentions (cell access costs the same as a local on CPython
#: 3.11+, so no load/write-back hoisting).
_SCALARS = (
    "fetch_cycle",
    "fic",
    "current_fetch_line",
    "redirect_cycle",
    "floor",
    "commit_frontier",
    "commit_used",
    "window_index",
    "history",
    "lookups",
    "mispredictions",
    "i_accesses",
    "i_misses",
    "d_accesses",
    "d_misses",
    "l2_accesses",
    "l2_misses",
    "loads",
    "stores",
)

class _Rec:
    """Codegen-time facts for one record a unit emits."""

    __slots__ = ("pc", "uid", "v0", "v1", "has_result", "mem")

    def __init__(self, pc, uid, v0, v1, has_result, mem):
        self.pc = pc
        self.uid = uid
        self.v0 = v0
        self.v1 = v1
        self.has_result = has_result
        self.mem = mem


def compile_fused(machine: "Machine", config=None, probe: bool = False) -> FusedProgram:
    """Generate the fused simulate→time→account tier for *machine*.

    The unit decomposition, straight-line simulation code and control
    tails mirror :func:`repro.sim.blockc.compile_blocks` exactly; the
    per-record timing updates mirror the compiled kernel
    :func:`repro.uarch.tkernel.compile_kernel` generates for *config*
    (same helpers, same literals, same state-update order).  ``probe``
    additionally emits a per-record snapshot of the timing counters into
    a caller-supplied sink — the hook ``compare_fused`` uses to bisect a
    divergence to the exact record.
    """
    from ..uarch.config import MachineConfig
    from ..uarch.tkernel import (
        _RING_BITS,
        _div,
        _fu_probe,
        _grow_ring,
        _mod,
        _ring_probe,
        _table_for,
    )

    if config is None:
        config = MachineConfig()

    flat = machine._flat
    block_start = machine._block_start
    function_entry = machine._function_entry
    total = len(flat)
    static = machine.static_info
    table = _table_for(static)
    uid_base = table.uid_base
    hot_words = table.hot_word
    src_tuples = table.src_tuples()

    icfg = config.icache
    dcfg = config.dcache
    l2cfg = config.l2cache
    predictor = config.predictor
    memory_latency = (
        config.memory_first_chunk_cycles + 3 * config.memory_interchunk_cycles
    )
    l2_extra = l2cfg.miss_penalty_cycles + memory_latency
    frontend = config.frontend_depth
    ring_capacity = 1 << _RING_BITS

    gshare_mask = predictor.gshare_entries - 1
    bimodal_mask = predictor.bimodal_entries - 1
    selector_mask = predictor.selector_entries - 1
    history_mask = (1 << predictor.history_bits) - 1

    # Rings that can actually bind (a functional-unit probe is elided
    # when its width covers the whole issue width).
    rings = ["iss"]
    if config.int_alus < config.issue_width:
        rings.append("alu")
    if config.int_muls < config.issue_width:
        rings.append("mul")
    if config.lsq_ports < config.issue_width:
        rings.append("lsq")

    # -- per-record timing snippets (relative indentation; the writer
    # -- prepends the unit-body indent) -------------------------------
    def width_block(out, ind):
        out.append(ind + f"if fic >= {config.fetch_width}:")
        out.append(ind + "    fetch_cycle += 1")
        out.append(ind + "    fic = 1")
        out.append(ind + "    floor += 1")
        out.append(ind + "else:")
        out.append(ind + "    fic += 1")

    def bump_block(out, ind, bump):
        # Mirrors the compiled kernel's ``latency > I_HIT`` split: a
        # zero bump is plain fetch-width accounting.
        if bump == 0:
            width_block(out, ind)
        else:
            out.append(ind + f"fetch_cycle += {bump}")
            out.append(ind + "fic = 1")
            out.append(ind + f"floor = fetch_cycle + {frontend}")

    def i_l2_block(out, ind, address):
        l2_line = address // l2cfg.line_bytes
        l2_set = l2_line % l2cfg.num_sets
        l2_tag = l2_line // l2cfg.num_sets
        out.append(ind + "l2_accesses += 1")
        out.append(ind + f"_w2 = l2_ways[{l2_set}]")
        out.append(ind + f"if {l2_tag} in _w2:")
        out.append(ind + f"    _w2.remove({l2_tag})")
        out.append(ind + f"    _w2.append({l2_tag})")
        bump_block(out, ind + "    ", icfg.miss_penalty_cycles)
        out.append(ind + "else:")
        out.append(ind + "    l2_misses += 1")
        out.append(ind + f"    _w2.append({l2_tag})")
        out.append(ind + f"    if len(_w2) > {l2cfg.associativity}:")
        out.append(ind + "        _w2.pop(0)")
        bump_block(out, ind + "    ", icfg.miss_penalty_cycles + l2_extra)

    def icache_block(out, ind, address):
        line = address // icfg.line_bytes
        set_ = line % icfg.num_sets
        tag = line // icfg.num_sets
        out.append(ind + "i_accesses += 1")
        if icfg.associativity == 2:
            out.append(ind + f"if {tag} == i_mru[{set_}]:")
            width_block(out, ind + "    ")
            out.append(ind + f"elif {tag} == i_lru[{set_}]:")
            out.append(ind + f"    i_lru[{set_}] = i_mru[{set_}]")
            out.append(ind + f"    i_mru[{set_}] = {tag}")
            width_block(out, ind + "    ")
            out.append(ind + "else:")
            out.append(ind + "    i_misses += 1")
            out.append(ind + f"    i_lru[{set_}] = i_mru[{set_}]")
            out.append(ind + f"    i_mru[{set_}] = {tag}")
            i_l2_block(out, ind + "    ", address)
        else:
            out.append(ind + f"_w = i_ways[{set_}]")
            out.append(ind + f"if {tag} in _w:")
            out.append(ind + f"    _w.remove({tag})")
            out.append(ind + f"    _w.append({tag})")
            width_block(out, ind + "    ")
            out.append(ind + "else:")
            out.append(ind + "    i_misses += 1")
            out.append(ind + f"    _w.append({tag})")
            out.append(ind + f"    if len(_w) > {icfg.associativity}:")
            out.append(ind + "        _w.pop(0)")
            i_l2_block(out, ind + "    ", address)

    def fetch_section(out, address, first, prev_address):
        line = address // icfg.line_bytes
        if first:
            # The only records that post a redirect or invalidate the
            # fetch line are unit-final control records, so the dynamic
            # checks are needed on the unit's first record only.
            out.append("if redirect_cycle:")
            out.append("    if redirect_cycle > fetch_cycle:")
            out.append("        fetch_cycle = redirect_cycle")
            out.append("        fic = 0")
            out.append(f"        floor = fetch_cycle + {frontend}")
            out.append("    redirect_cycle = 0")
            out.append(f"if current_fetch_line != {line}:")
            out.append(f"    current_fetch_line = {line}")
            icache_block(out, "    ", address)
            out.append("else:")
            width_block(out, "    ")
        elif line == prev_address // icfg.line_bytes:
            width_block(out, "")
        else:
            out.append(f"current_fetch_line = {line}")
            icache_block(out, "", address)

    def dcache_l2_block(out, ind, mem, complete):
        out.append(ind + "l2_accesses += 1")
        out.append(ind + f"_l2 = {_div(mem, l2cfg.line_bytes)}")
        out.append(ind + f"_w2 = l2_ways[{_mod('_l2', l2cfg.num_sets)}]")
        out.append(ind + f"_l2t = {_div('_l2', l2cfg.num_sets)}")
        out.append(ind + "if _l2t in _w2:")
        out.append(ind + "    _w2.remove(_l2t)")
        out.append(ind + "    _w2.append(_l2t)")
        complete(out, ind + "    ", 1)
        out.append(ind + "else:")
        out.append(ind + "    l2_misses += 1")
        out.append(ind + "    _w2.append(_l2t)")
        out.append(ind + f"    if len(_w2) > {l2cfg.associativity}:")
        out.append(ind + "        _w2.pop(0)")
        complete(out, ind + "    ", 2)

    def dcache_block(out, hot, mem):
        is_store = bool(hot & 2048)

        def complete(lines, ind, level):
            if is_store:
                lines.append(ind + "_cp = _cy + 1")
            else:
                latency = dcfg.hit_cycles
                if level >= 1:
                    latency += dcfg.miss_penalty_cycles
                if level == 2:
                    latency += l2_extra
                lines.append(ind + f"_cp = _cy + {latency}")

        out.append("d_accesses += 1")
        out.append(f"_dl = {_div(mem, dcfg.line_bytes)}")
        out.append(f"_ds = {_mod('_dl', dcfg.num_sets)}")
        out.append(f"_dt = {_div('_dl', dcfg.num_sets)}")
        if dcfg.associativity == 2:
            out.append("if _dt == d_mru[_ds]:")
            complete(out, "    ", 0)
            out.append("elif _dt == d_lru[_ds]:")
            out.append("    d_lru[_ds] = d_mru[_ds]")
            out.append("    d_mru[_ds] = _dt")
            complete(out, "    ", 0)
            out.append("else:")
            out.append("    d_misses += 1")
            out.append("    d_lru[_ds] = d_mru[_ds]")
            out.append("    d_mru[_ds] = _dt")
            dcache_l2_block(out, "    ", mem, complete)
        else:
            out.append("_w = d_ways[_ds]")
            out.append("if _dt in _w:")
            out.append("    _w.remove(_dt)")
            out.append("    _w.append(_dt)")
            complete(out, "    ", 0)
            out.append("else:")
            out.append("    d_misses += 1")
            out.append("    _w.append(_dt)")
            out.append(f"    if len(_w) > {dcfg.associativity}:")
            out.append("        _w.pop(0)")
            dcache_l2_block(out, "    ", mem, complete)

    def record_shared(out, rec, first, prev_address):
        """Fetch → dispatch → issue → FU → execute → commit → dest."""
        address = machine.address_of_index(rec.pc)
        hot = hot_words[rec.uid - uid_base]
        fetch_section(out, address, first, prev_address)
        # Dispatch: window slot + source-operand readiness.
        out.append("_cy = window_commits[window_index]")
        out.append("if _cy < floor:")
        out.append("    _cy = floor")
        for reg in src_tuples[rec.uid - uid_base]:
            out.append(f"_r = reg_ready[{reg}]")
            out.append("if _r > _cy:")
            out.append("    _cy = _r")
        out.extend(_ring_probe("iss", config.issue_width, "", cycle_var="_cy").split("\n"))
        if hot & 768:
            if hot & 512:
                fu = _fu_probe("lsq", config.lsq_ports, config.issue_width, "", cycle_var="_cy")
            else:
                fu = _fu_probe("mul", config.int_muls, config.issue_width, "", cycle_var="_cy")
        else:
            fu = _fu_probe("alu", config.int_alus, config.issue_width, "", cycle_var="_cy")
        if fu is not None:
            out.extend(fu.split("\n"))
        # Execute: the simulator always tags LOAD/STORE records with
        # their memory address, so the data-cache path is static.
        if hot & 3072:
            if hot & 1024:
                out.append("loads += 1")
            else:
                out.append("stores += 1")
            dcache_block(out, hot, rec.mem)
        else:
            out.append(f"_cp = _cy + {hot & 255}")
        # Commit.
        out.append("if _cp > commit_frontier:")
        out.append("    commit_frontier = _cp")
        out.append("    commit_used = 1")
        out.append(f"elif commit_used >= {config.retire_width}:")
        out.append("    commit_frontier += 1")
        out.append("    commit_used = 1")
        out.append("else:")
        out.append("    commit_used += 1")
        out.append("window_commits[window_index] = commit_frontier")
        window = config.max_in_flight
        if window & (window - 1) == 0:
            out.append(f"window_index = (window_index + 1) & {window - 1}")
        else:
            out.append("window_index += 1")
            out.append(f"if window_index == {window}:")
            out.append("    window_index = 0")
        dest = hot >> 16
        if dest:
            out.append(f"reg_ready[{dest - 1}] = _cp")

    def predictor_arm(out, ind, pc_value, taken):
        """Gshare/bimodal/selector update with the outcome baked in."""
        bkey = pc_value & bimodal_mask
        skey = pc_value & selector_mask
        out.append(ind + f"_gk = ({pc_value} ^ history) & {gshare_mask}")
        out.append(ind + "_gp = gshare[_gk] >= 2")
        out.append(ind + f"_bp = bimodal[{bkey}] >= 2")
        out.append(ind + f"if selector[{skey}] >= 2:")
        out.append(ind + "    _pr = _gp")
        out.append(ind + "else:")
        out.append(ind + "    _pr = _bp")
        out.append(ind + "lookups += 1")
        if taken:
            out.append(ind + "if _gp != _bp:")
            out.append(ind + f"    _ct = selector[{skey}]")
            out.append(ind + "    if _gp:")
            out.append(ind + "        if _ct < 3:")
            out.append(ind + f"            selector[{skey}] = _ct + 1")
            out.append(ind + "    elif _ct > 0:")
            out.append(ind + f"        selector[{skey}] = _ct - 1")
            out.append(ind + "_ct = gshare[_gk]")
            out.append(ind + "if _ct < 3:")
            out.append(ind + "    gshare[_gk] = _ct + 1")
            out.append(ind + f"_ct = bimodal[{bkey}]")
            out.append(ind + "if _ct < 3:")
            out.append(ind + f"    bimodal[{bkey}] = _ct + 1")
            out.append(ind + f"history = ((history << 1) | 1) & {history_mask}")
            out.append(ind + "if not _pr:")
            out.append(ind + "    mispredictions += 1")
            out.append(
                ind + f"    redirect_cycle = _cp + {config.mispredict_redirect_penalty}"
            )
            out.append(ind + "    current_fetch_line = -1")
        else:
            out.append(ind + "if _gp != _bp:")
            out.append(ind + f"    _ct = selector[{skey}]")
            out.append(ind + "    if _gp:")
            out.append(ind + "        if _ct > 0:")
            out.append(ind + f"            selector[{skey}] = _ct - 1")
            out.append(ind + "    elif _ct < 3:")
            out.append(ind + f"        selector[{skey}] = _ct + 1")
            out.append(ind + "_ct = gshare[_gk]")
            out.append(ind + "if _ct > 0:")
            out.append(ind + "    gshare[_gk] = _ct - 1")
            out.append(ind + f"_ct = bimodal[{bkey}]")
            out.append(ind + "if _ct > 0:")
            out.append(ind + f"    bimodal[{bkey}] = _ct - 1")
            out.append(ind + f"history = (history << 1) & {history_mask}")
            out.append(ind + "if _pr:")
            out.append(ind + "    mispredictions += 1")
            out.append(
                ind + f"    redirect_cycle = _cp + {config.mispredict_redirect_penalty}"
            )
            out.append(ind + "    current_fetch_line = -1")

    def bump_writeback_lines(entry, unit):
        # Pack the unit's value signature into ONE int: value i's
        # significant-byte count (1..8, so it fits a nibble) lands at
        # bit 4*i.  Constant values fold into a single literal; a value
        # expression appearing at several positions costs one lookup,
        # multiplied onto all of its nibbles at once (no carries: every
        # nibble holds at most 8).  An int signature hashes and compares
        # much faster than the tuple it replaces.
        #
        # Register write-backs ride along so the per-register sig cache
        # ``rsig`` stays exact: a value read from ``regs[n]`` costs a
        # list index (``rsig[n]``) instead of a dict lookup, and every
        # write-back refreshes ``rsig`` with the sig its own result
        # already needed for the signature pack.
        values = unit.values
        written = sorted(unit.written.items())
        written_regs = {index for index, _ in written}
        pre: list[str] = []
        cache: dict[str, str] = {}

        def base_expr(value):
            reg = _REG_VALUE.match(value)
            if reg is not None:
                return f"rsig[{reg.group(1)}]"
            return f"sig_get({value})"

        def hoisted_expr(value):
            # Snapshot into a local: shared between the pack and the
            # write-backs, and — for ``rsig[n]`` reads where register n
            # is itself rewritten below — safe against the refresh.
            expr = cache.get(value)
            if expr is None or not expr.startswith("_sg"):
                local = f"_sg{len(pre)}"
                pre.append(f"{local} = {base_expr(value)}")
                cache[value] = expr = local
            return expr

        wb_sigs = []
        for _index, name in written:
            match = _CONST_VALUE.match(name)
            if match is not None:
                wb_sigs.append(str(significant_bytes(int(match.group(1)))))
            else:
                wb_sigs.append(hoisted_expr(name))
        const_bits = 0
        positions: dict[str, list[int]] = {}
        for index, value in enumerate(values):
            match = _CONST_VALUE.match(value)
            if match is not None:
                const_bits |= significant_bytes(int(match.group(1))) << (4 * index)
                continue
            expr = cache.get(value)
            if expr is None:
                # The pack runs before any write-back, so an inline
                # ``rsig[n]`` read here is safe even when n is written.
                cache[value] = expr = base_expr(value)
            positions.setdefault(expr, []).append(4 * index)
        parts = []
        for expr, shifts in positions.items():
            if len(shifts) == 1:
                shift = shifts[0]
                parts.append(expr if shift == 0 else f"{expr} << {shift}")
            else:
                parts.append(f"{expr} * {sum(1 << s for s in shifts)}")
        if const_bits or not parts:
            parts.append(str(const_bits))
        # Run-length memo: loops overwhelmingly re-enter a block with the
        # signature of the previous iteration, so the hot path is one
        # compare + increment; the dict is touched only when the
        # signature changes (and once more at collection time).
        lines = pre + [
            f"_s = {' | '.join(parts)}",
            f"if _s == _p{entry}:",
            f"    _n{entry} += 1",
            "else:",
            f"    if _n{entry}:",
            f"        _k{entry}[_p{entry}] = _kg{entry}(_p{entry}, 0) + _n{entry}",
            f"    _p{entry} = _s",
            f"    _n{entry} = 1",
        ]
        for (index, _name), sig in zip(written, wb_sigs):
            lines.append(f"regs[{index}] = {_name}; rsig[{index}] = {sig}")
        return lines

    # -- unit decomposition (identical to compile_blocks) -------------
    entries = set(block_start.values())
    for pc, (_function, _label, inst) in enumerate(flat):
        if inst.kind is OpKind.CALL and pc + 1 < total:
            entries.add(pc + 1)
    entry_points = tuple(sorted(pc for pc in entries if pc < total))
    lengths = [0] * total

    counted_entries: list[int] = []
    unit_specs: list[tuple] = []
    # Block/function counters are derived at collection time from the
    # per-unit signature dicts (sum of counts == executions), so the hot
    # loop carries no dict bump at all.  Units that always die (ghost
    # branches, dead calls) never surface their counts — the run aborts
    # and the dicts are discarded — so they need no flush entry.
    block_flush: list[tuple[int, tuple[str, str]]] = []
    call_flush: list[tuple[int, str]] = []
    body: list[str] = []

    for position, entry in enumerate(entry_points):
        end = entry_points[position + 1] if position + 1 < len(entry_points) else total
        stop = entry
        while stop < end and flat[stop][2].kind not in _CONTROL_KINDS:
            stop += 1
        has_control = stop < end
        if has_control:
            stop += 1
        lengths[entry] = stop - entry
        function_name, block_label, _inst = flat[entry]
        block_key = (function_name, block_label)

        unit = _UnitWriter()
        heads_block = block_start.get(block_key) == entry

        recs: list[_Rec] = []
        for pc in range(entry, stop - 1 if has_control else stop):
            inst = flat[pc][2]
            v0 = len(unit.values)
            m0 = len(unit.mems)
            _gen_straightline(unit, inst, True)
            meta = unit.metas[-1]
            recs.append(
                _Rec(
                    pc,
                    inst.uid,
                    v0,
                    len(unit.values),
                    bool(meta & FLAG_RESULT),
                    unit.mems[m0] if len(unit.mems) > m0 else None,
                )
            )

        tail: list[str] = []
        counted = True
        control: Optional[_Rec] = None

        def emit_records(records, out=tail):
            prev_address = None
            for index, rec in enumerate(records):
                record_shared(out, rec, index == 0 and prev_address is None, prev_address)
                if probe:
                    out.append(_PROBE_LINE)
                prev_address = machine.address_of_index(rec.pc)
            return prev_address

        if not has_control:
            emit_records(recs)
            tail.extend(bump_writeback_lines(entry, unit))
            tail.append(f"return {stop}")
        else:
            pc = stop - 1
            inst = flat[pc][2]
            kind = inst.kind
            address = machine.address_of_index(pc)
            if kind is OpKind.BRANCH:
                if inst.op is Opcode.BR:
                    taken_pc = block_start.get((function_name, inst.target))
                    if taken_pc is None:
                        # Ghost branch: the unit always dies with the
                        # oracle's KeyError before emitting anything.
                        counted = False
                        tail.append(f"return _bs[({function_name!r}, {inst.target!r})]")
                    else:
                        control = _Rec(pc, inst.uid, len(unit.values), len(unit.values), False, None)
                        prev_address = emit_records(recs)
                        record_shared(tail, control, not recs, prev_address)
                        # Unconditional branches reach the kernel's
                        # branch section but take no predictor action.
                        if probe:
                            tail.append(_PROBE_LINE)
                        tail.extend(bump_writeback_lines(entry, unit))
                        tail.append(f"return {taken_pc}")
                else:
                    condition = unit.operand(inst.srcs[0])
                    predicate = _PRED_EXPR[inst.op](condition)
                    taken_pc = block_start.get((function_name, inst.target))
                    v0 = len(unit.values)
                    unit.values.append(condition)
                    control = _Rec(pc, inst.uid, v0, v0 + 1, False, None)
                    pc_value = address >> 2
                    if taken_pc is None:
                        # Ghost conditional: blockc emits the unit's
                        # records only on the fall-through path, so all
                        # timing/accounting sits behind the ghost check.
                        tail.append(f"if {predicate}:")
                        tail.append(f"    return _bs[({function_name!r}, {inst.target!r})]")
                        prev_address = emit_records(recs)
                        record_shared(tail, control, not recs, prev_address)
                        predictor_arm(tail, "", pc_value, False)
                        if probe:
                            tail.append(_PROBE_LINE)
                        tail.extend(bump_writeback_lines(entry, unit))
                        tail.append(f"return {stop}")
                    else:
                        prev_address = emit_records(recs)
                        record_shared(tail, control, not recs, prev_address)
                        # The shape signature is outcome-independent
                        # (shape keys ignore the taken bits), so the
                        # bump and writebacks stay outside the split.
                        tail.extend(bump_writeback_lines(entry, unit))
                        tail.append(f"if {predicate}:")
                        predictor_arm(tail, "    ", pc_value, True)
                        if probe:
                            tail.append("    " + _PROBE_LINE)
                        tail.append(f"    return {taken_pc}")
                        predictor_arm(tail, "", pc_value, False)
                        if probe:
                            tail.append(_PROBE_LINE)
                        tail.append(f"return {stop}")
            elif kind is OpKind.CALL:
                return_address = machine.address_of_index(pc + 1)
                unit.write(inst.dest, f"({return_address})")
                target_pc = function_entry.get(inst.target)
                if target_pc is None:
                    # Dead call: dies with the oracle's KeyError before
                    # any record of the unit is emitted.  The run aborts
                    # on the next line, so the plain write-backs may
                    # leave ``rsig`` stale without consequence.
                    counted = False
                    tail.extend(unit.writeback_lines())
                    tail.append(f"return _fe[{inst.target!r}]")
                else:
                    v0 = len(unit.values)
                    unit.values.append(f"({return_address})")
                    control = _Rec(pc, inst.uid, v0, v0 + 1, True, None)
                    prev_address = emit_records(recs)
                    record_shared(tail, control, not recs, prev_address)
                    tail.append("redirect_cycle = fetch_cycle + 1")
                    tail.append("current_fetch_line = -1")
                    if probe:
                        tail.append(_PROBE_LINE)
                    tail.extend(bump_writeback_lines(entry, unit))
                    call_flush.append((entry, inst.target))
                    tail.append(f"return {target_pc}")
            elif kind is OpKind.RETURN:
                return_value = unit.operand(inst.srcs[0])
                v0 = len(unit.values)
                unit.values.append(return_value)
                control = _Rec(pc, inst.uid, v0, v0 + 1, False, None)
                prev_address = emit_records(recs)
                record_shared(tail, control, not recs, prev_address)
                tail.append("redirect_cycle = fetch_cycle + 1")
                tail.append("current_fetch_line = -1")
                if probe:
                    tail.append(_PROBE_LINE)
                tail.extend(bump_writeback_lines(entry, unit))
                tail.append(f"if {return_value} == {machine._stop_address}:")
                tail.append("    return -1")
                tail.append(f"return _ioa({return_value})")
            else:  # HALT
                control = _Rec(pc, inst.uid, len(unit.values), len(unit.values), False, None)
                prev_address = emit_records(recs)
                record_shared(tail, control, not recs, prev_address)
                if probe:
                    tail.append(_PROBE_LINE)
                tail.extend(bump_writeback_lines(entry, unit))
                tail.append("return -1")

        if counted:
            counted_entries.append(entry)
            if heads_block:
                block_flush.append((entry, block_key))
            # Every record the unit can emit, in emission order: the
            # straight-line records plus (when live) the control record
            # whose values were appended during tail construction.
            specs = [(rec.uid, rec.v0, rec.v1, rec.has_result) for rec in recs]
            if control is not None:
                specs.append((control.uid, control.v0, control.v1, control.has_result))
            unit_specs.append(tuple(specs))

        body.append(f"    def _u{entry}():")
        if counted:
            # Declare exactly the timing scalars (and grow-reassignable
            # ring names) this unit's tail touches.  A per-unit
            # load-into-locals/write-back scheme was measured against
            # this and lost slightly on CPython 3.11 — cell access costs
            # about the same as a local, so the transfer code is pure
            # overhead for short units.
            words = set(re.findall(r"\w+", "\n".join(tail)))
            mutated = [n for n in _SCALARS if n in words]
            for ring in rings:
                if f"{ring}_cycle_at" in words:
                    mutated += (
                        f"{ring}_cycle_at",
                        f"{ring}_count",
                        f"{ring}_mask",
                        f"{ring}_skip_from",
                        f"{ring}_skip_to",
                    )
            for start in range(0, len(mutated), 6):
                chunk = ", ".join(mutated[start : start + 6])
                body.append(f"        nonlocal {chunk}")
            body.append(f"        nonlocal _p{entry}, _n{entry}")
        for line in unit.lines:
            body.append(f"        {line}")
        for line in tail:
            body.append(f"        {line}")

    # -- bind source --------------------------------------------------
    lines = [
        "def bind(regs, load, store, pages_get, page_for, output_append,",
        "         block_counts, call_counts, consts, sig_get, probe_append):",
        "    _cc = call_counts.get",
        "    _ifb = int.from_bytes",
        # Per-register significance cache: refreshed by every register
        # write-back, so operand sigs for register-entry values are a
        # list index instead of a dict probe.
        "    rsig = list(map(sig_get, regs))",
        "    (_ioa, _bs, _fe, _W8, _W16, _W32, _W64, _grow_ring,) = consts",
    ]
    if icfg.associativity == 2:
        lines.append(
            f"    i_mru, i_lru = [None] * {icfg.num_sets}, [None] * {icfg.num_sets}"
        )
    else:
        lines.append(f"    i_ways = [[] for _ in range({icfg.num_sets})]")
    if dcfg.associativity == 2:
        lines.append(
            f"    d_mru, d_lru = [None] * {dcfg.num_sets}, [None] * {dcfg.num_sets}"
        )
    else:
        lines.append(f"    d_ways = [[] for _ in range({dcfg.num_sets})]")
    lines.append(f"    l2_ways = [[] for _ in range({l2cfg.num_sets})]")
    lines.append("    i_accesses = i_misses = d_accesses = d_misses = 0")
    lines.append("    l2_accesses = l2_misses = 0")
    lines.append(f"    gshare = [1] * {predictor.gshare_entries}")
    lines.append(f"    bimodal = [1] * {predictor.bimodal_entries}")
    lines.append(f"    selector = [2] * {predictor.selector_entries}")
    lines.append("    history = 0")
    lines.append("    lookups = mispredictions = 0")
    for ring in rings:
        lines.append(
            f"    {ring}_cycle_at, {ring}_count, {ring}_mask = "
            f"[-1] * {ring_capacity}, [0] * {ring_capacity}, {ring_capacity - 1}"
        )
        lines.append(f"    {ring}_skip_from = {ring}_skip_to = -1")
    lines.append("    commit_frontier = -1")
    lines.append("    commit_used = 0")
    lines.append(f"    reg_ready = [0] * {table.num_regs}")
    lines.append(f"    window_commits = [0] * {config.max_in_flight}")
    lines.append("    window_index = 0")
    lines.append("    fetch_cycle = 0")
    lines.append("    fic = 0")
    lines.append("    current_fetch_line = -1")
    lines.append("    redirect_cycle = 0")
    lines.append(f"    floor = {frontend}")
    lines.append("    loads = stores = 0")
    for entry in counted_entries:
        lines.append(f"    _k{entry} = {{}}")
        lines.append(f"    _kg{entry} = _k{entry}.get")
        lines.append(f"    _p{entry} = -1")
        lines.append(f"    _n{entry} = 0")
    lines.extend(body)
    lines.append("    def _finalize():")
    lines.append("        _lc = commit_frontier if commit_frontier >= 0 else 0")
    lines.append("        return (")
    lines.append("            (_lc if _lc > fetch_cycle else fetch_cycle) + 1,")
    lines.append("            lookups, mispredictions,")
    lines.append("            i_accesses, i_misses,")
    lines.append("            d_accesses, d_misses,")
    lines.append("            l2_accesses, l2_misses,")
    lines.append("            loads, stores,")
    lines.append("        )")
    lines.append("    def _collect():")
    if counted_entries:
        for start in range(0, len(counted_entries), 8):
            chunk = ", ".join(
                f"_n{entry}" for entry in counted_entries[start : start + 8]
            )
            lines.append(f"        nonlocal {chunk}")
        for entry in counted_entries:
            lines.append(f"        if _n{entry}:")
            lines.append(
                f"            _k{entry}[_p{entry}] = "
                f"_kg{entry}(_p{entry}, 0) + _n{entry}"
            )
            lines.append(f"            _n{entry} = 0")
    # Block/function entry counts fall out of the signature dicts for
    # free: the bump runs exactly once per surviving unit execution.
    for entry, key in block_flush:
        lines.append(f"        _t = sum(_k{entry}.values())")
        lines.append("        if _t:")
        lines.append(f"            block_counts[{key!r}] = _t")
    for entry, target in call_flush:
        lines.append(f"        _t = sum(_k{entry}.values())")
        lines.append("        if _t:")
        lines.append(f"            call_counts[{target!r}] = _cc({target!r}, 0) + _t")
    counts_list = ", ".join(f"_k{entry}" for entry in counted_entries)
    lines.append(f"        return [{counts_list}]")
    lines.append(f"    _funcs = [None] * {total}")
    for entry in entry_points:
        lines.append(f"    _funcs[{entry}] = _u{entry}")
    lines.append("    return _funcs, _collect, _finalize")
    source = "\n".join(lines) + "\n"

    namespace: dict = {}
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
            _CODE_CACHE.pop(next(iter(_CODE_CACHE)))
        code = compile(source, "<repro.sim.fusedc>", "exec")
        _CODE_CACHE[source] = code
    exec(code, namespace)  # noqa: S102
    consts = (
        machine.index_of_address,
        block_start,
        function_entry,
        Width.BYTE,
        Width.HALF,
        Width.WORD,
        Width.QUAD,
        _grow_ring,
    )
    return FusedProgram(
        bind=namespace["bind"],
        consts=consts,
        lengths=lengths,
        entry_points=entry_points,
        source=source,
        config=config,
        probe=probe,
        unit_specs=tuple(unit_specs),
        key_caches=tuple({} for _ in unit_specs),
        static=static,
        sig_cache=_SigCache(),
        uid_base=uid_base,
    )


#: Process-wide compiled-program cache, keyed by a content fingerprint
#: of everything the generator reads.  The experiment engine builds a
#: fresh Machine (over a fresh IR build) per evaluation; without this,
#: every cold evaluation pays full source generation (~0.02 s) and, for
#: a new source, ``compile()`` (~0.13 s) again.
_PROGRAM_CACHE: dict[tuple, FusedProgram] = {}
_PROGRAM_CACHE_LIMIT = 32


def _fingerprint(machine: "Machine", config, probe: bool) -> tuple:
    """Content key covering every input of :func:`compile_fused`.

    Uids enter relative to the build's ``uid_base`` so identical
    rebuilds of the same IR (fresh uid counters, same structure) hit.
    """
    base = machine.static_info.uid_base
    return (
        config,
        probe,
        machine._stop_address,
        machine.program.entry,
        tuple(
            (
                function_name,
                block_label,
                inst.uid - base,
                inst.op,
                inst.dest,
                inst.srcs,
                inst.width,
                inst.target,
                inst.is_guard,
            )
            for function_name, block_label, inst in machine._flat
        ),
    )


def fused_program_for(machine: "Machine", config=None, probe: bool = False) -> FusedProgram:
    """Compiled fused program for *machine*, served from the module cache.

    Bit-exact under reuse: the generated source depends only on the
    fingerprinted content, and the consumers translate the uid shift
    (:meth:`FusedProgram.expand`).
    """
    from ..uarch.config import MachineConfig

    if config is None:
        config = MachineConfig()
    key = _fingerprint(machine, config, probe)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = compile_fused(machine, config, probe=probe)
        if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_LIMIT:
            _PROGRAM_CACHE.pop(next(iter(_PROGRAM_CACHE)))
        _PROGRAM_CACHE[key] = program
    return program
