"""Dynamic-trace data structures.

The functional simulator produces a stream of :class:`TraceRecord` entries;
the out-of-order timing model, the power model and the hardware compression
schemes all consume this stream.  Records are kept deliberately small: all
*static* per-instruction facts (opcode, functional unit, encoded width,
latency...) are looked up from a :class:`StaticInfo` side table by ``uid``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from ..isa import Instruction, OpKind, Opcode, Width, op_info
from ..ir import Program

__all__ = ["TraceRecord", "StaticInfo", "StaticEntry", "Trace"]


class TraceRecord(NamedTuple):
    """One executed instruction.

    Attributes:
        uid: static instruction uid (index into :class:`StaticInfo`).
        address: instruction address (for branch-predictor indexing).
        srcs: values of the source registers that were read.
        result: value written to the destination register, or None.
        mem_address: effective address of a load/store, or None.
        taken: for branches, whether the branch was taken; None otherwise.
        next_address: address of the next executed instruction.
    """

    uid: int
    address: int
    srcs: tuple[int, ...]
    result: Optional[int]
    mem_address: Optional[int]
    taken: Optional[bool]
    next_address: int


@dataclass(frozen=True)
class StaticEntry:
    """Static facts about one instruction, shared by all dynamic instances."""

    uid: int
    opcode: Opcode
    kind: OpKind
    width: Width
    functional_unit: str
    latency: int
    energy_class: str
    is_load: bool
    is_store: bool
    is_branch: bool
    is_conditional: bool
    is_call: bool
    is_return: bool
    is_guard: bool
    memory_width: Optional[Width]
    num_src_regs: int
    has_dest: bool
    src_regs: tuple[int, ...]
    dest_reg: Optional[int]
    function: str
    block: str


class StaticInfo:
    """Side table mapping instruction uid → :class:`StaticEntry`."""

    def __init__(self) -> None:
        self.entries: dict[int, StaticEntry] = {}

    @classmethod
    def from_program(cls, program: Program) -> "StaticInfo":
        info = cls()
        for function in program.iter_functions():
            for block in function.iter_blocks():
                for inst in block.instructions:
                    info.add(inst, function.name, block.label)
        return info

    def add(self, inst: Instruction, function: str, block: str) -> None:
        meta = op_info(inst.op)
        self.entries[inst.uid] = StaticEntry(
            uid=inst.uid,
            opcode=inst.op,
            kind=meta.kind,
            width=inst.width,
            functional_unit=meta.functional_unit,
            latency=meta.latency,
            energy_class=meta.energy_class,
            is_load=inst.is_load,
            is_store=inst.is_store,
            is_branch=inst.is_branch,
            is_conditional=inst.is_conditional_branch,
            is_call=inst.is_call,
            is_return=inst.is_return,
            is_guard=inst.is_guard,
            memory_width=inst.memory_width if inst.is_memory else None,
            num_src_regs=len(inst.uses()),
            has_dest=inst.dest is not None,
            src_regs=tuple(reg.index for reg in inst.uses()),
            dest_reg=inst.dest.index if inst.dest is not None else None,
            function=function,
            block=block,
        )

    def __getitem__(self, uid: int) -> StaticEntry:
        return self.entries[uid]

    def __contains__(self, uid: int) -> bool:
        return uid in self.entries

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class Trace:
    """A complete dynamic trace plus its static side table."""

    records: list[TraceRecord]
    static: StaticInfo

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def width_distribution(self) -> dict[Width, int]:
        """Dynamic instruction counts per encoded (software) width.

        Memory operations count under their access width; everything else
        under the width encoded in the opcode.
        """
        distribution: dict[Width, int] = {w: 0 for w in Width.all_widths()}
        static = self.static
        for record in self.records:
            entry = static[record.uid]
            width = entry.memory_width if entry.memory_width is not None else entry.width
            distribution[width] += 1
        return distribution
