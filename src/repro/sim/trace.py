"""Dynamic-trace data structures: columnar storage with a record view.

The functional simulator produces one logical :class:`TraceRecord` per
executed instruction; the out-of-order timing model, the power model, the
summary statistics and the hardware compression schemes all consume this
stream.  Physically the trace is *columnar*: instead of a Python list of
per-record NamedTuples, a :class:`Trace` stores a handful of flat
``array('q')`` columns (the standard layout of production trace-driven
simulators, and the same locality argument the paper's significance
compression makes for hardware).  The layout is:

``_rows``
    One packed meta word per record: ``meta = uid << 8 | flags``
    (``flags``: bit 0 result present, bit 1 memory address present,
    bit 2 ``taken`` present, bit 3 ``taken`` value, bits 4-6 source
    count).
``_arena``
    All per-record *values*, flattened: the source operands followed by
    the result when the record has one (flag bit 0).  Per-record offsets
    are derived from the flag bytes (source count + result bit).
``_mem``
    Effective addresses of loads/stores only (one entry per record whose
    flag bit 1 is set), stored as the signed reinterpretation of the
    unsigned 64-bit address.

Instruction addresses are not stored at all when the trace comes from the
simulator: the address is a function of the static uid, and the
``next_address`` of record *i* is the address of record *i + 1* (the
functional trace is in order; the final record's successor is its own
address + 4, which is what both interpreter loops emit on halt).  Traces
built from explicit record lists (tests, hand-crafted inputs) keep real
address/next columns, because hand-built records need not satisfy those
invariants.

Values that do not fit a signed 64-bit slot (e.g. a raw ``Imm`` bit
pattern injected by a transformation) are kept exactly in a tiny side
table; consumers fall back to the per-record path for such traces, so the
columnar fast paths never see placeholder values.

All *static* per-instruction facts (opcode, functional unit, encoded
width, latency...) are looked up from a :class:`StaticInfo` side table by
``uid``.  Static uids are contiguous per program, so the table is a dense
list indexed by ``uid - uid_base`` — no hash lookups on hot paths.

Compatibility contract: ``trace[i]`` and ``iter(trace)`` materialize
:class:`TraceRecord` views lazily, ``trace.records`` is a sequence view
that compares equal to a plain record list, and ``Trace(records=...,
static=...)`` ingests any iterable of records — so record-oriented
consumers and tests keep working unchanged.  See ``docs/trace.md``.
"""

from __future__ import annotations

import sys
from array import array
from collections import Counter
from dataclasses import dataclass
from itertools import accumulate, chain, islice, repeat
from operator import rshift
from typing import Iterable, Iterator, NamedTuple, Optional

from ..isa import Instruction, OpKind, Opcode, Width, op_info, significant_bytes
from ..ir import Program

__all__ = [
    "TraceRecord",
    "StaticInfo",
    "StaticEntry",
    "Trace",
    "TraceRecordView",
    "pack_record",
]

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
_UINT64 = (1 << 64) - 1

#: Flag-byte layout inside ``meta`` (see module docstring).
FLAG_RESULT = 1
FLAG_MEM = 2
FLAG_TAKEN = 4
FLAG_TAKEN_TRUE = 8
_SRC_SHIFT = 4

#: Byte-translation tables turning a flag byte into a derived quantity.
_VALUE_COUNT_TABLE = bytes(((f >> _SRC_SHIFT) & 7) + (f & FLAG_RESULT) for f in range(256))
_MEM_BIT_TABLE = bytes(1 if f & FLAG_MEM else 0 for f in range(256))

#: Byte offset of the low (flag) byte inside each packed 8-byte meta word.
_FLAG_BYTE_OFFSET = 0 if sys.byteorder == "little" else 7


class _SigCache(dict):
    """Value → significant-byte count, computed once per distinct value."""

    def __missing__(self, value: int) -> int:
        sig = significant_bytes(value)
        self[value] = sig
        return sig


class TraceRecord(NamedTuple):
    """One executed instruction.

    Attributes:
        uid: static instruction uid (index into :class:`StaticInfo`).
        address: instruction address (for branch-predictor indexing).
        srcs: values of the source registers that were read.
        result: value written to the destination register, or None.
        mem_address: effective address of a load/store, or None.
        taken: for branches, whether the branch was taken; None otherwise.
        next_address: address of the next executed instruction.
    """

    uid: int
    address: int
    srcs: tuple[int, ...]
    result: Optional[int]
    mem_address: Optional[int]
    taken: Optional[bool]
    next_address: int


@dataclass(frozen=True)
class StaticEntry:
    """Static facts about one instruction, shared by all dynamic instances."""

    uid: int
    opcode: Opcode
    kind: OpKind
    width: Width
    functional_unit: str
    latency: int
    energy_class: str
    is_load: bool
    is_store: bool
    is_branch: bool
    is_conditional: bool
    is_call: bool
    is_return: bool
    is_guard: bool
    memory_width: Optional[Width]
    num_src_regs: int
    has_dest: bool
    src_regs: tuple[int, ...]
    dest_reg: Optional[int]
    function: str
    block: str


class StaticInfo:
    """Side table mapping instruction uid → :class:`StaticEntry`.

    Uids are allocated contiguously per program, so entries live in a
    dense list indexed by ``uid - uid_base``; the hot-loop consumers index
    ``info.entries`` directly instead of paying a dict lookup per record.
    Sparse uid ranges (transformed programs with eliminated instructions)
    leave ``None`` holes.
    """

    # __weakref__ lets derived lookup structures (e.g. the compiled
    # timing kernel's packed static table) be cached per-StaticInfo in a
    # WeakKeyDictionary without pinning the program in memory.
    __slots__ = ("entries", "uid_base", "_count", "_version", "__weakref__")

    def __init__(self) -> None:
        self.entries: list[Optional[StaticEntry]] = []
        self.uid_base: int = 0
        self._count = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every :meth:`add_entry`.

        Lets derived caches detect *in-place* entry replacement, which
        leaves every shape-observable (base, length, count) unchanged.
        """
        return self._version

    @classmethod
    def from_program(cls, program: Program) -> "StaticInfo":
        info = cls()
        for function in program.iter_functions():
            for block in function.iter_blocks():
                for inst in block.instructions:
                    info.add(inst, function.name, block.label)
        return info

    def add(self, inst: Instruction, function: str, block: str) -> None:
        meta = op_info(inst.op)
        self.add_entry(
            StaticEntry(
                uid=inst.uid,
                opcode=inst.op,
                kind=meta.kind,
                width=inst.width,
                functional_unit=meta.functional_unit,
                latency=meta.latency,
                energy_class=meta.energy_class,
                is_load=inst.is_load,
                is_store=inst.is_store,
                is_branch=inst.is_branch,
                is_conditional=inst.is_conditional_branch,
                is_call=inst.is_call,
                is_return=inst.is_return,
                is_guard=inst.is_guard,
                memory_width=inst.memory_width if inst.is_memory else None,
                num_src_regs=len(inst.uses()),
                has_dest=inst.dest is not None,
                src_regs=tuple(reg.index for reg in inst.uses()),
                dest_reg=inst.dest.index if inst.dest is not None else None,
                function=function,
                block=block,
            )
        )

    def add_entry(self, entry: StaticEntry) -> None:
        """Insert a prebuilt entry, growing the dense table as needed."""
        uid = entry.uid
        entries = self.entries
        self._version += 1
        if not entries:
            self.uid_base = uid
            entries.append(entry)
            self._count = 1
            return
        index = uid - self.uid_base
        if index < 0:
            entries[:0] = [None] * (-index)
            self.uid_base = uid
            index = 0
        elif index >= len(entries):
            entries.extend([None] * (index + 1 - len(entries)))
        if entries[index] is None:
            self._count += 1
        entries[index] = entry

    def __getitem__(self, uid: int) -> StaticEntry:
        index = uid - self.uid_base
        if 0 <= index < len(self.entries):
            entry = self.entries[index]
            if entry is not None:
                return entry
        raise KeyError(uid)

    def get(self, uid: int) -> Optional[StaticEntry]:
        index = uid - self.uid_base
        if 0 <= index < len(self.entries):
            return self.entries[index]
        return None

    def __contains__(self, uid: int) -> bool:
        return self.get(uid) is not None

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[StaticEntry]:
        return (entry for entry in self.entries if entry is not None)


class TraceRecordView:
    """Sequence view over a :class:`Trace` yielding :class:`TraceRecord`.

    Compares equal to a plain list of records, so differential tests like
    ``fast.trace.records == reference.trace.records`` work unchanged
    without materializing either side up front.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "Trace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._trace[i] for i in range(*index.indices(len(self._trace)))]
        return self._trace[index]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._trace)

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceRecordView):
            if other._trace is self._trace:
                return True
        elif not isinstance(other, (list, tuple)):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(a == b for a, b in zip(self, other))

    def __repr__(self) -> str:
        return f"<TraceRecordView of {len(self)} records>"


def _encode_u64(value: int) -> int:
    """Reinterpret an unsigned 64-bit value as its signed bit pattern."""
    return value - (1 << 64) if value > _INT64_MAX else value


def _extend_values_exact(arena: array, big: dict[int, int], values: tuple[int, ...]) -> None:
    """Append ``values`` to the arena with exact overflow diversion.

    The shared recovery path behind both the per-record and the
    block-batched append closures, invoked after ``arena.extend(values)``
    raised ``OverflowError``: ``array.extend`` appends elementwise and
    stops at the first element that fails the int64 conversion, so the
    arena holds exactly the in-range prefix of ``values``.  Truncate back
    to the batch boundary and re-append with the exact out-of-range
    values diverted to the ``big`` side table (keyed by arena index).
    """
    prefix = 0
    while prefix < len(values) and _INT64_MIN <= values[prefix] <= _INT64_MAX:
        prefix += 1
    start = len(arena) - prefix
    del arena[start:]
    for position, value in enumerate(values):
        if _INT64_MIN <= value <= _INT64_MAX:
            arena.append(value)
        else:
            big[start + position] = value
            arena.append(0)


def pack_record(
    uid: int,
    srcs: tuple[int, ...],
    result: Optional[int],
    taken: Optional[bool],
    has_mem: bool,
) -> tuple[int, tuple[int, ...]]:
    """Encode one record's dynamic fields as ``(meta, values)``.

    The single source of truth for the flag-byte layout, shared by every
    site that encodes records dynamically (the reference interpreter
    loop, record-list ingestion, benchmarks); the fast-dispatch handlers
    bake the same encoding in as compile-time constants, which the
    loop-equivalence tests lock against this function's output.
    """
    n_src = len(srcs)
    if n_src > 7:
        raise ValueError(f"trace records support at most 7 sources, got {n_src}")
    flags = n_src << _SRC_SHIFT
    if result is None:
        values = srcs
    else:
        flags |= FLAG_RESULT
        values = srcs + (result,)
    if taken is not None:
        flags |= FLAG_TAKEN | (FLAG_TAKEN_TRUE if taken else 0)
    if has_mem:
        flags |= FLAG_MEM
    return uid << 8 | flags, values


class Trace:
    """A complete dynamic trace plus its static side table.

    Construct either empty (the simulator's path: ``Trace(static=...)``
    followed by calls to the shared emission closures from
    :meth:`emitters`) or from an iterable of records (the compatibility
    path used by tests and by trace rebuilding).
    """

    __slots__ = (
        "static",
        "_rows",
        "_arena",
        "_mem",
        "_addr",
        "_next",
        "_addr_by_uid",
        "_big",
        # lazy caches
        "_flag_bytes",
        "_offsets",
        "_mem_prefix",
        "_uid_counts_cache",
        "_shape_counts_cache",
        "_addr_cache",
    )

    def __init__(
        self,
        records: Optional[Iterable[TraceRecord]] = None,
        static: Optional[StaticInfo] = None,
        addresses: Optional[dict[int, int]] = None,
    ) -> None:
        self.static = static if static is not None else StaticInfo()
        self._rows = array("q")
        self._arena = array("q")
        self._mem = array("q")
        self._addr: Optional[array] = None
        self._next: Optional[array] = None
        self._addr_by_uid = addresses
        self._big: dict[int, int] = {}
        self._flag_bytes = None
        self._offsets = None
        self._mem_prefix = None
        self._uid_counts_cache = None
        self._shape_counts_cache = None
        self._addr_cache = None
        if records is not None:
            self._ingest(records)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def emitters(self):
        """The shared per-record append path: ``(emit, emit_mem)`` closures.

        The reference and fast-dispatch tiers of
        :class:`~repro.sim.machine.Machine` write trace records
        exclusively through these two closures (the block-compiled tier
        batches the same packed words via :meth:`block_emitters`), so the
        columnar encoding has a single source of truth and the emission
        sites cannot drift.

        ``emit(meta, values)`` appends one record whose packed ``meta``
        the caller provides (``uid << 8 | flags``); ``values`` holds the
        source operands followed by the result when flag bit 0 is set.
        ``emit_mem`` is the memory-op variant taking the (unsigned)
        effective address.  Values outside the signed 64-bit range are
        preserved exactly in the overflow side table.
        """
        rows_append = self._rows.append
        arena = self._arena
        arena_extend = arena.extend
        mem_append = self._mem.append
        big = self._big

        def emit(meta: int, values: tuple[int, ...]) -> None:
            rows_append(meta)
            if values:
                try:
                    arena_extend(values)
                except OverflowError:
                    _extend_values_exact(arena, big, values)

        def emit_mem(meta: int, values: tuple[int, ...], mem_address: int) -> None:
            emit(meta, values)
            mem_append(_encode_u64(mem_address))

        return emit, emit_mem

    def block_emitters(self):
        """Block-batched append path: ``(extend_rows, extend_values,
        append_mem, spill_values)``.

        Used by the block-compiled interpreter tier
        (:mod:`repro.sim.blockc`), which amortizes emission over whole
        basic blocks: ``extend_rows`` takes a block's precomputed meta
        template (an ``array('q')`` built from the same packed words
        :meth:`emitters` appends one at a time), ``extend_values`` takes
        the block's dynamic values as one flat tuple.  When
        ``extend_values`` raises ``OverflowError`` the caller must invoke
        ``spill_values`` with the same tuple — it runs the identical
        exact-overflow recovery the per-record ``emit`` closure uses, so
        the two append paths cannot drift.  ``append_mem`` appends one
        *signed-encoded* effective address; the block compiler bakes the
        unsigned→signed reinterpretation of :func:`_encode_u64` into its
        generated source, exactly as the fast-dispatch tier bakes metas.
        """
        arena = self._arena
        big = self._big

        def spill_values(values: tuple[int, ...]) -> None:
            _extend_values_exact(arena, big, values)

        return self._rows.extend, arena.extend, self._mem.append, spill_values

    def _ingest(self, records: Iterable[TraceRecord]) -> None:
        """Build columns from an explicit record iterable.

        Hand-built records need not satisfy the derived-address invariants
        of simulator traces, so explicit address/next columns are kept.
        """
        emit, emit_mem = self.emitters()
        addr_col = array("q")
        next_col = array("q")
        addr_append = addr_col.append
        next_append = next_col.append
        for uid, address, srcs, result, mem_address, taken, next_address in records:
            meta, values = pack_record(uid, srcs, result, taken, mem_address is not None)
            if mem_address is None:
                emit(meta, values)
            else:
                # The sparse memory column stores unsigned 64-bit addresses
                # (both interpreter loops mask them); reject out-of-domain
                # hand-built records instead of silently re-encoding them.
                if not 0 <= mem_address <= _UINT64:
                    raise ValueError(
                        f"mem_address {mem_address:#x} is not an unsigned 64-bit address"
                    )
                emit_mem(meta, values, mem_address)
            addr_append(address)
            next_append(next_address)
        self._addr = addr_col
        self._next = next_col

    # ------------------------------------------------------------------
    # Columns (lazy, cached)
    # ------------------------------------------------------------------
    @property
    def metas(self) -> array:
        """The packed ``uid << 8 | flags`` column (one word per record)."""
        return self._rows

    @property
    def flag_bytes(self) -> bytes:
        """One flag byte per record (a strided byte slice of the metas)."""
        if self._flag_bytes is None:
            self._flag_bytes = self._rows.tobytes()[_FLAG_BYTE_OFFSET::8]
        return self._flag_bytes

    @property
    def value_offsets(self) -> array:
        """Per-record ``[start, end)`` offsets into the value arena
        (length ``len(trace) + 1``; a record's values are its sources
        followed by its result when flag bit 0 is set)."""
        if self._offsets is None:
            counts = self.flag_bytes.translate(_VALUE_COUNT_TABLE)
            self._offsets = array("q", chain((0,), accumulate(counts)))
        return self._offsets

    @property
    def arena(self) -> array:
        """The flat value arena (sources + result per record)."""
        return self._arena

    @property
    def mem_addresses(self) -> array:
        """Signed-encoded effective addresses, one per memory record."""
        return self._mem

    @property
    def has_overflow_values(self) -> bool:
        """True when some values live in the exact-overflow side table.

        Columnar fast paths must fall back to the per-record view for
        such traces; the view patches the exact values back in.
        """
        return bool(self._big)

    def _mem_prefix_counts(self) -> array:
        """Memory-record ordinal of each record (for random access)."""
        if self._mem_prefix is None:
            bits = self.flag_bytes.translate(_MEM_BIT_TABLE)
            self._mem_prefix = array("q", chain((0,), accumulate(bits)))
        return self._mem_prefix

    def _address_of(self, index: int, uid: int) -> int:
        if self._addr is not None:
            return self._addr[index]
        return self._addr_by_uid[uid]

    def _next_of(self, index: int, address: int) -> int:
        if self._next is not None:
            return self._next[index]
        if index + 1 < len(self):
            return self._addr_by_uid[self._rows[index + 1] >> 8]
        return address + 4

    @property
    def has_derived_addresses(self) -> bool:
        """True when record addresses derive from the static uid map
        (simulator-emitted traces).  Hand-built traces carry explicit
        per-record address columns instead, and consumers that bake
        per-uid address facts (the compiled timing kernel) must fall
        back to the per-record column for them."""
        return self._addr is None

    @property
    def address_map(self) -> Optional[dict[int, int]]:
        """The uid → instruction-address map of a derived-address trace
        (None for traces with explicit address columns)."""
        return self._addr_by_uid

    def addresses(self) -> array:
        """The per-record instruction-address column (materialized, cached).

        Simulator traces derive addresses from the static uid; both
        timing kernels walk this column, so the derived materialization
        is cached rather than rebuilt per run.  The cache is *not* the
        explicit ``_addr`` column (snapshots serialize that one only for
        hand-built traces) and is dropped by
        :meth:`invalidate_aggregation_caches` like every derived cache.
        """
        if self._addr is not None:
            return self._addr
        if self._addr_cache is None:
            lookup = self._addr_by_uid
            self._addr_cache = array("q", (lookup[meta >> 8] for meta in self._rows))
        return self._addr_cache

    # ------------------------------------------------------------------
    # Record view
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index: int) -> TraceRecord:
        n = len(self._rows)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("trace record index out of range")
        meta = self._rows[index]
        flags = meta & 0xFF
        uid = meta >> 8
        offsets = self.value_offsets
        start, end = offsets[index], offsets[index + 1]
        values = self._arena[start:end]
        big = self._big
        if big:
            values = [
                big.get(start + position, value) for position, value in enumerate(values)
            ]
        if flags & FLAG_RESULT:
            result = values[-1]
            srcs = tuple(values[:-1])
        else:
            result = None
            srcs = tuple(values)
        if flags & FLAG_MEM:
            mem_address = self._mem[self._mem_prefix_counts()[index]] & _UINT64
        else:
            mem_address = None
        taken = bool(flags & FLAG_TAKEN_TRUE) if flags & FLAG_TAKEN else None
        address = self._address_of(index, uid)
        return TraceRecord(
            uid=uid,
            address=address,
            srcs=srcs,
            result=result,
            mem_address=mem_address,
            taken=taken,
            next_address=self._next_of(index, address),
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        rows = self._rows
        arena = self._arena
        mem = self._mem
        big = self._big
        addr_col = self._addr
        next_col = self._next
        lookup = self._addr_by_uid
        n = len(rows)
        start = 0
        mem_cursor = 0
        record = TraceRecord
        for index in range(n):
            meta = rows[index]
            flags = meta & 0xFF
            uid = meta >> 8
            has_result = flags & FLAG_RESULT
            end = start + ((flags >> _SRC_SHIFT) & 7) + (1 if has_result else 0)
            values = arena[start:end]
            if big:
                values = [
                    big.get(start + position, value)
                    for position, value in enumerate(values)
                ]
            if has_result:
                result = values[-1]
                srcs = tuple(values[:-1])
            else:
                result = None
                srcs = tuple(values)
            if flags & FLAG_MEM:
                mem_address = mem[mem_cursor] & _UINT64
                mem_cursor += 1
            else:
                mem_address = None
            taken = bool(flags & FLAG_TAKEN_TRUE) if flags & FLAG_TAKEN else None
            if addr_col is not None:
                address = addr_col[index]
                next_address = next_col[index]
            else:
                address = lookup[uid]
                if index + 1 < n:
                    next_address = lookup[rows[index + 1] >> 8]
                else:
                    next_address = address + 4
            start = end
            yield record(uid, address, srcs, result, mem_address, taken, next_address)

    @property
    def records(self) -> TraceRecordView:
        """Sequence view of the trace as :class:`TraceRecord` tuples."""
        return TraceRecordView(self)

    # ------------------------------------------------------------------
    # Columnar aggregates
    # ------------------------------------------------------------------
    def uid_counts(self) -> Counter:
        """Dynamic record count per static uid (cached).

        Derived from the cached :meth:`shape_counts` when the accountant
        has already aggregated the trace, otherwise one C-level pass over
        the meta column.  Reused by :meth:`width_distribution`, the
        summary aggregation
        (:func:`repro.experiments.summary.aggregate_trace`) and the fused
        energy accountant, replacing what used to be three independent
        full record walks.
        """
        if self._uid_counts_cache is None:
            if self._shape_counts_cache is not None:
                counts: Counter = Counter()
                for (uid, _, _), count in self._shape_counts_cache.items():
                    counts[uid] += count
                self._uid_counts_cache = counts
            else:
                self._uid_counts_cache = Counter(map(rshift, self._rows, repeat(8)))
        return self._uid_counts_cache

    def shape_counts(self) -> dict:
        """Dynamic count per accounting shape ``(uid, src sigs, result sig)``
        (cached).

        The trace-level aggregation primitive of the columnar engine: the
        per-record key is ``(uid, bytes of per-source significant-byte
        counts, result significant-byte count — or -1 when the record has
        no result)``.  The heavy lifting runs at C level: significant
        bytes are computed once per *distinct value* (a ``dict.__missing__``
        cache fed by ``map`` translates the whole arena), per-record value
        chunks are byte slices of the translated arena, and a single
        ``Counter`` pass over ``(meta, sig chunk)`` pairs groups the
        stream — the result's sig rides at the tail of the chunk, and the
        meta's flag bits disambiguate it.  The fused energy accountant
        consumes these shapes directly, and the summary statistics derive
        the result-size histogram and :meth:`uid_counts` from them — so
        the per-record Python work of the old walks collapses into
        per-distinct-shape work.

        Traces carrying overflow values take an exact per-record fold
        through the record view instead.
        """
        if self._shape_counts_cache is not None:
            return self._shape_counts_cache
        counts: dict = {}
        get = counts.get
        if self._big:
            sig_cache = _SigCache()
            for record in self:
                sigs = bytes(sig_cache[value] for value in record.srcs)
                result = record.result
                rsig = -1 if result is None else sig_cache[result]
                key = (record.uid, sigs, rsig)
                counts[key] = get(key, 0) + 1
            self._shape_counts_cache = counts
            return counts
        offsets = self.value_offsets
        arena_sigs = bytes(map(_SigCache().__getitem__, self._arena))
        chunks = map(arena_sigs.__getitem__, map(slice, offsets, islice(offsets, 1, None)))
        grouped = Counter(zip(self._rows, chunks))
        # Collapse the packed metas (uid | flag byte) onto plain uids and
        # split the result sig off the chunk tail; the taken/memory flag
        # bits split shapes without changing them, so this per-distinct
        # fold only merges counts.
        for (meta, chunk), count in grouped.items():
            if meta & FLAG_RESULT:
                key = (meta >> 8, chunk[:-1], chunk[-1])
            else:
                key = (meta >> 8, chunk, -1)
            counts[key] = get(key, 0) + count
        self._shape_counts_cache = counts
        return counts

    def width_distribution(self) -> dict[Width, int]:
        """Dynamic instruction counts per encoded (software) width.

        Memory operations count under their access width; everything else
        under the width encoded in the opcode.  Derived from the cached
        :meth:`uid_counts`, not a record walk.
        """
        distribution: dict[Width, int] = {w: 0 for w in Width.all_widths()}
        static = self.static
        for uid, count in self.uid_counts().items():
            entry = static[uid]
            width = entry.memory_width if entry.memory_width is not None else entry.width
            distribution[width] += count
        return distribution

    def invalidate_aggregation_caches(self) -> None:
        """Drop the cached columnar aggregations (shapes, uid counts...).

        The caches assume the trace is fully built; emitting further
        records after a consumer has run would serve stale aggregates.
        Normal use never needs this — the machine finishes emission
        before handing the trace out — but benchmarks measuring the cold
        aggregation cost (and any future incremental writer) can reset
        with it.
        """
        self._flag_bytes = None
        self._offsets = None
        self._mem_prefix = None
        self._uid_counts_cache = None
        self._shape_counts_cache = None
        self._addr_cache = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Approximate heap bytes held by the trace columns."""
        total = (
            len(self._rows) * self._rows.itemsize
            + len(self._arena) * self._arena.itemsize
            + len(self._mem) * self._mem.itemsize
        )
        for column in (self._addr, self._next):
            if column is not None:
                total += len(column) * column.itemsize
        return total
