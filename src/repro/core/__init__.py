"""The paper's core contribution: VRP and VRS.

* **Value Range Propagation (VRP)** — static, conservative value/useful
  range analysis over the binary-level IR followed by narrow opcode
  assignment (:func:`run_vrp`, :func:`apply_widths`).
* **Value Range Specialization (VRS)** — profile-guided cloning of code
  regions guarded by range tests, driven by an energy cost/benefit model
  (:func:`run_vrs`).
"""

from .candidates import Candidate, identify_candidates
from .constprop import FoldStats, fold_constants_in_region
from .energy_model import (
    ALU_ENERGY_SAVINGS_NJ,
    EnergyModel,
    GuardCost,
    SavingsEstimator,
    alu_energy_saving_nj,
    class_energy_saving_nj,
)
from .propagation import FunctionAnalysis, FunctionVRP, VRPConfig
from .refinement import BranchConstraints, compute_branch_constraints
from .specialize import SpecializationRecord, specialize_candidate
from .transfer import forward_transfer
from .vrs import CandidateOutcome, VRSConfig, VRSResult, run_vrs
from .trip_count import LoopPins, analyze_loop_iterators
from .useful import UsefulBitsConfig, compute_useful_bits
from .value_range import FULL_RANGE, ValueRange, bits_needed_for_mask, range_for_width
from .vrp import VRPResult, apply_widths, run_vrp
from .width_assignment import NARROWABLE_KINDS, required_width, width_for_bits

__all__ = [
    "Candidate",
    "identify_candidates",
    "FoldStats",
    "fold_constants_in_region",
    "ALU_ENERGY_SAVINGS_NJ",
    "EnergyModel",
    "GuardCost",
    "SavingsEstimator",
    "alu_energy_saving_nj",
    "class_energy_saving_nj",
    "BranchConstraints",
    "compute_branch_constraints",
    "SpecializationRecord",
    "specialize_candidate",
    "CandidateOutcome",
    "VRSConfig",
    "VRSResult",
    "run_vrs",
    "FunctionAnalysis",
    "FunctionVRP",
    "VRPConfig",
    "forward_transfer",
    "LoopPins",
    "analyze_loop_iterators",
    "UsefulBitsConfig",
    "compute_useful_bits",
    "FULL_RANGE",
    "ValueRange",
    "bits_needed_for_mask",
    "range_for_width",
    "VRPResult",
    "apply_widths",
    "run_vrp",
    "NARROWABLE_KINDS",
    "required_width",
    "width_for_bits",
]
