"""Whole-program Value Range Propagation driver.

Runs the per-function engine bottom-up over the call graph, iterating a
small, fixed number of global rounds so that return-value ranges flow from
callees to callers and argument ranges flow from call sites to callee
parameters (§2.4, interprocedural analysis).  The result maps every
instruction to its assigned operand width; :func:`apply_widths` re-encodes
the program in place.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..isa import ARG_REGISTERS, Reg, Width
from ..ir import Program, build_call_graph
from .propagation import FunctionAnalysis, FunctionVRP, VRPConfig
from .value_range import FULL_RANGE, ValueRange
from .width_assignment import assign_function_widths

__all__ = ["VRPResult", "run_vrp", "apply_widths"]


@dataclass
class VRPResult:
    """Outcome of whole-program value range propagation."""

    program: Program
    config: VRPConfig
    analyses: dict[str, FunctionAnalysis] = field(default_factory=dict)
    widths: dict[int, Width] = field(default_factory=dict)
    original_widths: dict[int, Width] = field(default_factory=dict)
    return_ranges: dict[str, ValueRange] = field(default_factory=dict)
    analysis_seconds: float = 0.0
    global_rounds: int = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def width_of(self, uid: int) -> Width:
        """Assigned width of instruction ``uid`` (original width if unknown)."""
        return self.widths.get(uid, self.original_widths.get(uid, Width.QUAD))

    def narrowed_instructions(self) -> int:
        """Number of static instructions whose width was reduced."""
        return sum(
            1
            for uid, width in self.widths.items()
            if width < self.original_widths.get(uid, Width.QUAD)
        )

    def static_width_distribution(self) -> dict[Width, int]:
        """Static instruction count per assigned width."""
        distribution: dict[Width, int] = {w: 0 for w in Width.all_widths()}
        for width in self.widths.values():
            distribution[width] += 1
        return distribution

    def analysis_for(self, function_name: str) -> FunctionAnalysis:
        return self.analyses[function_name]


def run_vrp(program: Program, config: Optional[VRPConfig] = None) -> VRPResult:
    """Analyse ``program`` and compute per-instruction width assignments.

    The program is *not* modified; call :func:`apply_widths` to re-encode it.
    """
    config = config or VRPConfig()
    start = time.perf_counter()

    call_graph = build_call_graph(program)
    order = [name for name in call_graph.bottom_up_order() if name in program.functions]

    result = VRPResult(program=program, config=config)
    result.original_widths = {inst.uid: inst.width for inst in program.instructions()}

    param_ranges: dict[str, dict[Reg, ValueRange]] = {name: {} for name in order}
    return_ranges: dict[str, ValueRange] = {}

    rounds = config.global_iterations if config.interprocedural else 1
    for round_index in range(rounds):
        result.global_rounds = round_index + 1
        observed_args: dict[str, dict[Reg, ValueRange]] = {name: {} for name in order}
        for name in order:
            function = program.functions[name]
            engine = FunctionVRP(
                function,
                program,
                config,
                param_ranges=param_ranges.get(name, {}),
                return_ranges=return_ranges,
            )
            analysis = engine.run()
            result.analyses[name] = analysis
            return_ranges[name] = analysis.return_range
            if config.interprocedural:
                _collect_call_arguments(program, analysis, observed_args)
        if not config.interprocedural:
            break
        new_params = _merge_observed(order, observed_args)
        if new_params == param_ranges:
            break
        param_ranges = new_params

    result.return_ranges = dict(return_ranges)
    for name in order:
        result.widths.update(assign_function_widths(result.analyses[name]))
    result.analysis_seconds = time.perf_counter() - start
    return result


def apply_widths(program: Program, result: VRPResult) -> int:
    """Re-encode ``program`` in place with the widths chosen by ``result``.

    Returns the number of instructions whose encoding changed.
    """
    changed = 0
    for inst in program.instructions():
        new_width = result.widths.get(inst.uid)
        if new_width is not None and new_width != inst.width:
            inst.width = new_width
            changed += 1
    return changed


# ----------------------------------------------------------------------
# Interprocedural bookkeeping
# ----------------------------------------------------------------------
def _collect_call_arguments(
    program: Program,
    analysis: FunctionAnalysis,
    observed: dict[str, dict[Reg, ValueRange]],
) -> None:
    """Record the argument ranges seen at every call site of ``analysis``."""
    for inst in analysis.function.instructions():
        if not inst.is_call or inst.target not in program.functions:
            continue
        callee = program.functions[inst.target]
        slots = observed.setdefault(inst.target, {})
        for index in range(callee.num_params):
            reg = ARG_REGISTERS[index]
            value = analysis.use_range.get((inst.uid, reg), FULL_RANGE)
            previous = slots.get(reg)
            slots[reg] = value if previous is None else previous.union(value)


def _merge_observed(
    order: list[str], observed: dict[str, dict[Reg, ValueRange]]
) -> dict[str, dict[Reg, ValueRange]]:
    """Turn per-callee observed argument ranges into parameter seed ranges."""
    merged: dict[str, dict[Reg, ValueRange]] = {}
    for name in order:
        merged[name] = dict(observed.get(name, {}))
    return merged
