"""Value Range Specialization driver (§3).

The driver ties together the pieces of the profile-guided technique:

1. run VRP and re-encode the program (specialization savings are measured
   relative to what VRP alone achieves),
2. run the program on its *train* input to collect basic-block execution
   counts,
3. identify candidates with the preliminary benefit filter,
4. profile the candidates' values (Calder-style tables) on the train input,
5. evaluate the energy cost/benefit of specializing each candidate for its
   observed dominant value or value range, keep the profitable ones,
6. transform the program (guard + cloned region + constant propagation),
7. re-run VRP so the narrowed ranges propagate inside the clones.

The caller is responsible for putting the *train* input data into the
program before calling :func:`run_vrs` and the *reference* input afterwards
— exactly the train/ref split of the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir import Program, validate_program
from ..sim import Machine, ValueProfiler
from .candidates import Candidate, identify_candidates
from .energy_model import EnergyModel, SavingsEstimator
from .propagation import VRPConfig
from .specialize import SpecializationRecord, specialize_candidate
from .value_range import ValueRange
from .vrp import VRPResult, apply_widths, run_vrp

__all__ = ["VRSConfig", "CandidateOutcome", "VRSResult", "run_vrs"]


@dataclass(frozen=True)
class VRSConfig:
    """Configuration of the VRS pipeline.

    ``threshold_nj`` is the specialization-cost knob swept in Figures 8-11
    (30, 50, 70, 90 and 110 nJ): a candidate is specialized only when its
    estimated net benefit exceeds the threshold.
    """

    threshold_nj: float = 50.0
    vrp: VRPConfig = VRPConfig()
    profiler_capacity: int = 16
    dominant_value_fraction: float = 0.5
    #: Extra weight applied to the cost of *range* (min != max) guards.  A
    #: range test is four instructions on the candidate's hot path and, unlike
    #: a single-value test, never enables constant propagation, so it must
    #: clear a higher bar before it is considered profitable.
    range_specialization_cost_factor: float = 3.0
    min_execution_count: int = 4
    max_specializations_per_function: int = 16
    train_max_instructions: int = 20_000_000
    apply_constant_propagation: bool = True


@dataclass
class CandidateOutcome:
    """Fate of one profiled candidate (the categories of Figure 4)."""

    function: str
    uid: int
    status: str  # "specialized" | "no_benefit" | "dependent" | "not_executed"
    net_benefit_nj: float = 0.0
    value_range: Optional[ValueRange] = None


@dataclass
class VRSResult:
    """Outcome of the whole VRS pipeline."""

    program: Program
    config: VRSConfig
    vrp_before: VRPResult
    vrp_after: VRPResult
    candidates: list[Candidate] = field(default_factory=list)
    outcomes: list[CandidateOutcome] = field(default_factory=list)
    records: list[SpecializationRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Figure 4 statistics
    # ------------------------------------------------------------------
    @property
    def points_profiled(self) -> int:
        return len(self.candidates)

    def _count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == status)

    @property
    def points_specialized(self) -> int:
        return self._count("specialized")

    @property
    def points_no_benefit(self) -> int:
        return self._count("no_benefit") + self._count("not_executed")

    @property
    def points_dependent(self) -> int:
        return self._count("dependent")

    # ------------------------------------------------------------------
    # Figure 5 statistics
    # ------------------------------------------------------------------
    @property
    def static_specialized_instructions(self) -> int:
        """Instructions added as specialized copies (after folding)."""
        total = 0
        for record in self.records:
            total += record.cloned_instructions
            total -= record.fold_stats.instructions_removed
        return max(total, 0)

    @property
    def static_eliminated_instructions(self) -> int:
        """Instructions removed from specialized regions by folding."""
        return sum(record.fold_stats.instructions_removed for record in self.records)

    @property
    def guard_uids(self) -> set[int]:
        uids: set[int] = set()
        for record in self.records:
            uids |= record.guard_uids
        return uids

    @property
    def cloned_uids(self) -> set[int]:
        uids: set[int] = set()
        for record in self.records:
            uids |= record.cloned_uids
        return uids


def run_vrs(program: Program, config: Optional[VRSConfig] = None) -> VRSResult:
    """Run the complete VRS pipeline on ``program`` (modified in place)."""
    config = config or VRSConfig()
    model = EnergyModel()

    vrp_before = run_vrp(program, config.vrp)
    apply_widths(program, vrp_before)

    machine = Machine(program, max_instructions=config.train_max_instructions)
    train = machine.run()
    instruction_counts = train.instruction_counts(program)

    candidates = identify_candidates(
        program,
        vrp_before,
        instruction_counts,
        model=model,
        min_execution_count=config.min_execution_count,
    )

    profiler = ValueProfiler(
        {candidate.uid for candidate in candidates}, capacity=config.profiler_capacity
    )
    if candidates:
        machine.run(value_observer=profiler)

    outcomes, plans = _evaluate_candidates(
        program, config, model, vrp_before, instruction_counts, candidates, profiler
    )

    records = _apply_specializations(program, config, plans, outcomes)

    vrp_after = run_vrp(program, config.vrp)
    apply_widths(program, vrp_after)
    validate_program(program)

    return VRSResult(
        program=program,
        config=config,
        vrp_before=vrp_before,
        vrp_after=vrp_after,
        candidates=candidates,
        outcomes=outcomes,
        records=records,
    )


# ----------------------------------------------------------------------
# Candidate evaluation
# ----------------------------------------------------------------------
@dataclass
class _Plan:
    candidate: Candidate
    value_range: ValueRange
    net_benefit_nj: float


def _evaluate_candidates(
    program: Program,
    config: VRSConfig,
    model: EnergyModel,
    vrp_result: VRPResult,
    instruction_counts: dict[int, int],
    candidates: list[Candidate],
    profiler: ValueProfiler,
) -> tuple[list[CandidateOutcome], list[_Plan]]:
    outcomes: list[CandidateOutcome] = []
    plans: list[_Plan] = []
    estimators: dict[str, SavingsEstimator] = {}

    for candidate in candidates:
        table = profiler.table(candidate.uid)
        if table is None or table.total == 0:
            outcomes.append(
                CandidateOutcome(candidate.function, candidate.uid, "not_executed")
            )
            continue
        estimator = estimators.get(candidate.function)
        if estimator is None:
            estimator = SavingsEstimator(
                vrp_result.analyses[candidate.function],
                instruction_counts,
                vrp_result.widths,
                model=model,
            )
            estimators[candidate.function] = estimator

        best: Optional[tuple[ValueRange, float]] = None
        for value_range, frequency in _specialization_options(table, config):
            savings, _ = estimator.savings_nj(candidate.instruction, value_range)
            cost = estimator.cost_nj(candidate.instruction, value_range)
            if not value_range.is_constant:
                cost *= config.range_specialization_cost_factor
            net = savings * frequency - cost
            if best is None or net > best[1]:
                best = (value_range, net)

        if best is None or best[1] <= config.threshold_nj:
            outcomes.append(
                CandidateOutcome(
                    candidate.function,
                    candidate.uid,
                    "no_benefit",
                    net_benefit_nj=best[1] if best else 0.0,
                    value_range=best[0] if best else None,
                )
            )
            continue
        plans.append(_Plan(candidate, best[0], best[1]))

    plans.sort(key=lambda plan: plan.net_benefit_nj, reverse=True)
    return outcomes, plans


def _specialization_options(table, config: VRSConfig) -> list[tuple[ValueRange, float]]:
    """Candidate (range, frequency) pairs from a value-profile table."""
    options: list[tuple[ValueRange, float]] = []
    dominant = table.dominant_value()
    if dominant is not None and dominant[1] >= config.dominant_value_fraction:
        value, frequency = dominant
        options.append((ValueRange.constant(value), frequency))
    observed = table.observed_range()
    if observed is not None and observed[0] != observed[1]:
        low, high = observed
        options.append((ValueRange(low, high), table.range_frequency(low, high)))
    elif observed is not None and not options:
        options.append((ValueRange.constant(observed[0]), table.range_frequency(*observed)))
    return options


# ----------------------------------------------------------------------
# Applying the transformations
# ----------------------------------------------------------------------
def _apply_specializations(
    program: Program,
    config: VRSConfig,
    plans: list[_Plan],
    outcomes: list[CandidateOutcome],
) -> list[SpecializationRecord]:
    records: list[SpecializationRecord] = []
    covered_uids: set[int] = set()
    per_function: dict[str, int] = {}

    for plan in plans:
        candidate = plan.candidate
        if candidate.uid in covered_uids:
            outcomes.append(
                CandidateOutcome(candidate.function, candidate.uid, "dependent")
            )
            continue
        if per_function.get(candidate.function, 0) >= config.max_specializations_per_function:
            outcomes.append(
                CandidateOutcome(candidate.function, candidate.uid, "no_benefit")
            )
            continue
        function = program.functions[candidate.function]
        record = specialize_candidate(
            function,
            candidate.uid,
            plan.value_range,
            apply_constant_propagation=config.apply_constant_propagation,
        )
        if record is None:
            outcomes.append(
                CandidateOutcome(candidate.function, candidate.uid, "no_benefit")
            )
            continue
        records.append(record)
        per_function[candidate.function] = per_function.get(candidate.function, 0) + 1
        outcomes.append(
            CandidateOutcome(
                candidate.function,
                candidate.uid,
                "specialized",
                net_benefit_nj=plan.net_benefit_nj,
                value_range=plan.value_range,
            )
        )
        for label in record.original_region_labels:
            if label in function.blocks:
                for inst in function.blocks[label].instructions:
                    covered_uids.add(inst.uid)
    return records
