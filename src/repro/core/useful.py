"""Backward "useful range" propagation (§2.2.5).

Conventional VRP bounds the values an operand *can take*; useful-range
propagation bounds the bits of an operand that can *affect program
results*.  The canonical example is ``AND R1, 0xFF, R2``: whatever R1
holds, only its low byte influences R2, so the whole dependence chain
producing R1 only needs to compute one byte — provided R1 is not also used
somewhere that needs more bits.

The analysis computes, for every definition, the number of low bits any of
its uses can observe (``needed bits``), taking the maximum over all uses so
that a single wide consumer keeps the value wide (the paper's correctness
rule).  Useful bits propagate backwards through operations whose low output
bits depend only on equally-low input bits (add/sub/mul/logical/left
shifts); they are cut off at comparisons, memory addresses, calls and
right shifts by unknown amounts, which conservatively demand all 64 bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import Imm, Instruction, OpKind, Opcode, Reg, RETURN_VALUE, SAVED_REGISTERS, STACK_POINTER
from ..isa.registers import RETURN_ADDRESS
from ..ir import Definition, DependenceGraph, Function, reverse_postorder
from .value_range import bits_needed_for_mask

__all__ = ["UsefulBitsConfig", "compute_useful_bits"]

_MASK_BITS = {Opcode.MSKB: 8, Opcode.MSKW: 16, Opcode.MSKL: 32}
_EXTEND_BITS = {Opcode.SEXTB: 8, Opcode.SEXTW: 16, Opcode.SEXTL: 32}
#: Registers whose values are observable after the function returns and
#: therefore must be treated as fully needed at exit.
_LIVE_AT_EXIT = frozenset((RETURN_VALUE, STACK_POINTER, RETURN_ADDRESS) + SAVED_REGISTERS)


@dataclass(frozen=True)
class UsefulBitsConfig:
    """Tuning knobs of the useful-bits analysis."""

    #: Propagate useful bits backwards through add/sub/mul/logical chains
    #: (the "proposed VRP" of the paper).  When False the analysis degrades
    #: to the mask/store rules only.
    through_arithmetic: bool = True
    #: Maximum number of backward sweeps before giving up conservatively.
    max_iterations: int = 16


def compute_useful_bits(
    function: Function,
    graph: DependenceGraph,
    config: UsefulBitsConfig | None = None,
) -> dict[Definition, int]:
    """Needed low bits for every definition of ``function``."""
    config = config or UsefulBitsConfig()
    needed: dict[Definition, int] = {}

    def bump(definition: Definition, bits: int) -> bool:
        bits = max(1, min(64, bits))
        current = needed.get(definition, 0)
        if bits > current:
            needed[definition] = bits
            return True
        return False

    # Values observable after return are fully needed.
    for reg, defs in graph.exit_definitions.items():
        if reg in _LIVE_AT_EXIT:
            for definition in defs:
                bump(definition, 64)

    order = list(reverse_postorder(function))
    blocks = [function.blocks[label] for label in order]

    for _ in range(config.max_iterations):
        changed = False
        for block in reversed(blocks):
            for inst in reversed(block.instructions):
                out_bits = _output_needed_bits(inst, graph, needed)
                for reg, bits in _source_demands(inst, out_bits, config):
                    if reg.is_zero:
                        continue
                    for definition in graph.reaching_definitions(inst, reg):
                        changed |= bump(definition, bits)
        if not changed:
            return needed

    # Did not converge within the iteration budget: be safe and mark every
    # definition still in flux as fully needed.
    for definition in list(needed):
        needed[definition] = 64
    return needed


def _output_needed_bits(
    inst: Instruction, graph: DependenceGraph, needed: dict[Definition, int]
) -> int:
    """Bits of ``inst``'s own result that some consumer needs."""
    bits = 0
    for reg in inst.defs():
        bits = max(bits, needed.get(Definition("inst", reg, uid=inst.uid), 0))
    if inst.is_call:
        # The call's definitions are modelled separately; the JSR itself
        # writes the (wide) return address.
        bits = 64
    return bits


def _source_demands(
    inst: Instruction, out_bits: int, config: UsefulBitsConfig
) -> list[tuple[Reg, int]]:
    """(register, needed bits) demands this instruction places on its sources."""
    kind = inst.kind
    srcs = inst.srcs

    if kind is OpKind.STORE:
        value, base = srcs[0], srcs[1]
        demands = []
        if isinstance(value, Reg):
            demands.append((value, inst.memory_width.bits))
        if isinstance(base, Reg):
            demands.append((base, 64))
        return demands
    if kind is OpKind.LOAD:
        return [(srcs[0], 64)] if isinstance(srcs[0], Reg) else []
    if kind is OpKind.BRANCH:
        # A branch observes the sign and zero-ness of the full value, so its
        # condition operand may not be truncated (narrowing is still achieved
        # through the value range of the comparison result, which is [0, 1]).
        return [(reg, 64) for reg in inst.source_registers()]
    if kind in (OpKind.CALL, OpKind.RETURN, OpKind.OUTPUT):
        return [(reg, 64) for reg in inst.source_registers()]
    if kind in (OpKind.HALT, OpKind.NOP):
        return []
    if kind is OpKind.COMPARE:
        # A comparison observes the complete values of its operands; the
        # value-range side of VRP is what narrows comparisons.
        return [(reg, 64) for reg in inst.source_registers()]
    if kind is OpKind.CMOV:
        demands = []
        if isinstance(srcs[0], Reg):
            # The condition's zero-ness must be preserved exactly.
            demands.append((srcs[0], 64))
        if isinstance(srcs[1], Reg):
            demands.append((srcs[1], out_bits))
        if inst.dest is not None:
            demands.append((inst.dest, out_bits))
        return demands
    if kind is OpKind.MASK:
        limit = _MASK_BITS[inst.op]
        return [(srcs[0], min(out_bits, limit))] if isinstance(srcs[0], Reg) else []
    if kind is OpKind.EXTEND:
        limit = _EXTEND_BITS[inst.op]
        return [(srcs[0], min(out_bits, limit))] if isinstance(srcs[0], Reg) else []
    if kind is OpKind.MOVE:
        return [(reg, out_bits) for reg in inst.source_registers()]
    if kind is OpKind.SHIFT:
        return _shift_demands(inst, out_bits)
    if kind is OpKind.LOGICAL:
        return _logical_demands(inst, out_bits, config)
    if kind in (OpKind.ALU, OpKind.MUL):
        bits = out_bits if config.through_arithmetic else 64
        return [(reg, bits) for reg in inst.source_registers()]
    return [(reg, 64) for reg in inst.source_registers()]  # pragma: no cover


def _shift_demands(inst: Instruction, out_bits: int) -> list[tuple[Reg, int]]:
    value, amount = inst.srcs
    demands: list[tuple[Reg, int]] = []
    constant_amount = (amount.value & 63) if isinstance(amount, Imm) else None
    if isinstance(value, Reg):
        if inst.op is Opcode.SLL:
            if constant_amount is not None:
                demands.append((value, max(1, out_bits - constant_amount)))
            else:
                demands.append((value, out_bits))
        else:  # SRL / SRA expose higher input bits in low output bits.
            if constant_amount is not None:
                demands.append((value, min(64, out_bits + constant_amount)))
            else:
                demands.append((value, 64))
    if isinstance(amount, Reg):
        demands.append((amount, 8))
    return demands


def _logical_demands(
    inst: Instruction, out_bits: int, config: UsefulBitsConfig
) -> list[tuple[Reg, int]]:
    left, right = inst.srcs
    demands: list[tuple[Reg, int]] = []
    default = out_bits if config.through_arithmetic else 64

    def mask_limited(register: Reg, mask: int) -> tuple[Reg, int]:
        if inst.op is Opcode.AND:
            return register, min(out_bits, bits_needed_for_mask(mask))
        if inst.op is Opcode.OR:
            # Bits forced to one by the mask do not depend on the register.
            inverted = ~mask & ((1 << 64) - 1)
            return register, min(out_bits, bits_needed_for_mask(inverted))
        return register, default

    if isinstance(left, Reg) and isinstance(right, Imm):
        demands.append(mask_limited(left, right.value))
    elif isinstance(left, Reg):
        demands.append((left, default))
    if isinstance(right, Reg) and isinstance(left, Imm):
        demands.append(mask_limited(right, left.value))
    elif isinstance(right, Reg):
        demands.append((right, default))
    return demands
