"""Instruction-level energy model used by the VRS cost/benefit analysis.

Section 3.1 of the paper drives specialization decisions with empirically
measured per-instruction energy numbers: Table 1 gives the energy saved (in
nanojoules, aggregated over the reference runs) when an ALU operation's
operand width changes, and §3.2 prices the guard instructions (branches,
comparisons, additions) that specialization inserts.

This module reproduces Table 1 exactly and derives from it a per-width
energy for each instruction class, plus the paper's recursive
``Savings(I, r, min, max)`` computation over the def-use graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa import Imm, Instruction, OpKind, Reg, Width, narrowest_available_width
from ..ir import Definition, DependenceGraph
from .propagation import FunctionAnalysis
from .transfer import forward_transfer
from .value_range import ValueRange
from .width_assignment import NARROWABLE_KINDS, width_for_bits

__all__ = [
    "ALU_ENERGY_SAVINGS_NJ",
    "alu_energy_saving_nj",
    "class_energy_saving_nj",
    "GuardCost",
    "EnergyModel",
    "SavingsEstimator",
]

#: Table 1 — energy savings (nJ) for ALU operations when the operand width
#: changes from ``source`` (column) to ``dest`` (row).  Negative entries are
#: the cost of widening.
ALU_ENERGY_SAVINGS_NJ: dict[Width, dict[Width, float]] = {
    Width.QUAD: {Width.QUAD: 0.0, Width.WORD: -1.0, Width.HALF: -3.0, Width.BYTE: -6.0},
    Width.WORD: {Width.QUAD: 1.0, Width.WORD: 0.0, Width.HALF: -2.0, Width.BYTE: -5.0},
    Width.HALF: {Width.QUAD: 3.0, Width.WORD: 2.0, Width.HALF: 0.0, Width.BYTE: -3.0},
    Width.BYTE: {Width.QUAD: 6.0, Width.WORD: 5.0, Width.HALF: 3.0, Width.BYTE: 0.0},
}

#: Relative energy weight of each instruction class against the ALU class,
#: used to scale Table 1 for non-ALU instructions (multiplies switch far
#: more logic; moves and masks slightly less).
_CLASS_WEIGHT = {
    OpKind.ALU: 1.0,
    OpKind.LOGICAL: 0.9,
    OpKind.SHIFT: 1.0,
    OpKind.COMPARE: 0.8,
    OpKind.CMOV: 0.9,
    OpKind.MASK: 0.7,
    OpKind.EXTEND: 0.7,
    OpKind.MOVE: 0.7,
    OpKind.MUL: 3.0,
    OpKind.LOAD: 1.2,
    OpKind.STORE: 1.2,
}


def alu_energy_saving_nj(source: Width, dest: Width) -> float:
    """Table 1 lookup: energy saved changing an ALU op from source to dest."""
    return ALU_ENERGY_SAVINGS_NJ[dest][source]


def class_energy_saving_nj(kind: OpKind, source: Width, dest: Width) -> float:
    """Energy saved re-encoding an instruction of ``kind`` from source to dest."""
    return alu_energy_saving_nj(source, dest) * _CLASS_WEIGHT.get(kind, 1.0)


@dataclass(frozen=True)
class GuardCost:
    """Energy prices of the instructions a specialization guard needs (§3.2)."""

    branch_nj: float = 4.0
    comparison_nj: float = 3.5
    add_nj: float = 3.0

    def test_cost_nj(self, value_range: ValueRange) -> float:
        """Per-execution energy of the runtime test guarding ``value_range``.

        A zero-value test is a single branch, another single-value test is a
        comparison plus a branch, and a general range test is two
        comparisons, an AND and a branch.
        """
        if value_range.is_constant:
            if value_range.lo == 0:
                return self.branch_nj
            return self.comparison_nj + self.branch_nj
        return 2 * self.comparison_nj + self.add_nj + self.branch_nj

    def test_instruction_count(self, value_range: ValueRange) -> int:
        """Number of instructions in the guard for ``value_range``."""
        if value_range.is_constant:
            return 1 if value_range.lo == 0 else 2
        return 4


@dataclass
class EnergyModel:
    """Bundle of the energy constants used by VRS."""

    guard: GuardCost = field(default_factory=GuardCost)

    def instruction_saving_nj(self, inst: Instruction, old: Width, new: Width) -> float:
        """InstSaving: energy saved when ``inst`` moves from ``old`` to ``new``."""
        if new >= old:
            return 0.0
        return class_energy_saving_nj(inst.kind, old, new)


class SavingsEstimator:
    """Implements the recursive ``Savings(I, r, min, max)`` of §3.1.

    Given a candidate instruction ``I`` whose output register ``r`` is
    assumed to lie in ``[min, max]``, the estimator walks the def-use graph
    forwards, recomputing output ranges of the dependent instructions under
    that assumption, and accumulates ``InstCount(D) * InstSaving(D, ...)``
    for every dependent instruction whose width would shrink.
    """

    def __init__(
        self,
        analysis: FunctionAnalysis,
        instruction_counts: dict[int, int],
        widths: dict[int, Width],
        model: Optional[EnergyModel] = None,
        max_depth: int = 12,
    ) -> None:
        self.analysis = analysis
        self.graph: DependenceGraph = analysis.graph
        self.instruction_counts = instruction_counts
        self.widths = widths
        self.model = model or EnergyModel()
        self.max_depth = max_depth

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def savings_nj(self, inst: Instruction, value_range: ValueRange) -> tuple[float, set[int]]:
        """Total savings and the set of affected instruction uids."""
        affected: set[int] = set()
        visited: set[int] = set()
        total = self._savings_for_definition(inst, value_range, affected, visited, depth=0)
        return total, affected

    def cost_nj(self, inst: Instruction, value_range: ValueRange) -> float:
        """Cost of the runtime test, scaled by how often it executes (§3.2)."""
        count = self.instruction_counts.get(inst.uid, 0)
        return count * self.model.guard.test_cost_nj(value_range)

    # ------------------------------------------------------------------
    # Recursion over the def-use graph
    # ------------------------------------------------------------------
    def _savings_for_definition(
        self,
        producer: Instruction,
        producer_range: ValueRange,
        affected: set[int],
        visited: set[int],
        depth: int,
    ) -> float:
        if depth >= self.max_depth:
            return 0.0
        total = 0.0
        for dest in producer.defs():
            definition = Definition("inst", dest, uid=producer.uid)
            for use_uid, use_reg in self.graph.uses_of(definition):
                if use_uid in visited:
                    continue
                consumer = self.graph.instructions.get(use_uid)
                if consumer is None:
                    continue
                visited.add(use_uid)
                new_range = self._consumer_output_range(consumer, use_reg, producer_range)
                saving, new_width = self._consumer_saving(consumer, new_range)
                if saving > 0.0:
                    count = self.instruction_counts.get(consumer.uid, 0)
                    total += count * saving
                    affected.add(consumer.uid)
                if new_range is not None and new_width is not None:
                    total += self._savings_for_definition(
                        consumer, new_range, affected, visited, depth + 1
                    )
        return total

    def _consumer_output_range(
        self, consumer: Instruction, narrowed_reg: Reg, narrowed_range: ValueRange
    ) -> Optional[ValueRange]:
        """Output range of ``consumer`` if ``narrowed_reg`` had ``narrowed_range``."""
        if consumer.dest is None or consumer.dest.is_zero:
            return None
        src_ranges = []
        for operand in consumer.srcs:
            if isinstance(operand, Imm):
                src_ranges.append(ValueRange.constant(operand.value))
            elif operand == narrowed_reg:
                src_ranges.append(narrowed_range)
            else:
                src_ranges.append(self.analysis.operand_range(consumer, operand))
        dest_old = None
        if consumer.kind is OpKind.CMOV and consumer.dest is not None:
            dest_old = (
                narrowed_range
                if consumer.dest == narrowed_reg
                else self.analysis.operand_range(consumer, consumer.dest)
            )
        return forward_transfer(consumer, src_ranges, dest_old)

    def _consumer_saving(
        self, consumer: Instruction, new_range: Optional[ValueRange]
    ) -> tuple[float, Optional[Width]]:
        """(InstSaving, new width) for ``consumer`` under ``new_range``."""
        if consumer.kind not in NARROWABLE_KINDS or new_range is None:
            return 0.0, None
        old_width = self.widths.get(consumer.uid, consumer.width)
        useful_width = width_for_bits(self.analysis.output_useful_bits(consumer))
        needed = min(new_range.width(), useful_width)
        new_width = min(narrowest_available_width(consumer.op, needed), old_width)
        if new_width >= old_width:
            return 0.0, new_width
        return self.model.instruction_saving_nj(consumer, old_width, new_width), new_width
