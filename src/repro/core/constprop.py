"""Constant propagation inside specialized regions.

When VRS specializes a candidate for a *single value* (``min == max``), the
specialized clone knows the exact value of the candidate register, which
often makes whole sub-expressions constant and some conditional branches
decidable.  This pass (a scoped constant folder plus branch folding and
unreachable-block removal) is what produces the "eliminated" instructions of
Figure 5 — m88ksim and vortex remove almost everything in their specialized
regions.

The pass runs in two phases: a pure dataflow phase that computes, for every
region block, the register constants guaranteed on entry (iterated to a
fixed point, with intersection at joins), followed by a single rewrite phase
that folds instructions and resolves branches using those environments.  If
the dataflow does not converge within its iteration budget the pass gives
up without touching the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa import Imm, Instruction, OpKind, Opcode, Reg
from ..isa.semantics import BRANCH_SEMANTICS, evaluate_operation
from ..ir import Function, build_cfg, call_defined_registers

__all__ = ["FoldStats", "fold_constants_in_region"]

_FOLDABLE_KINDS = frozenset(
    {
        OpKind.ALU,
        OpKind.MUL,
        OpKind.LOGICAL,
        OpKind.SHIFT,
        OpKind.COMPARE,
        OpKind.MASK,
        OpKind.EXTEND,
        OpKind.MOVE,
    }
)


@dataclass
class FoldStats:
    """What the folder did to the region."""

    folded_to_constant: int = 0
    branches_resolved: int = 0
    instructions_removed: int = 0
    blocks_removed: list[str] = field(default_factory=list)


def fold_constants_in_region(
    function: Function,
    region_labels: set[str],
    entry_label: str,
    seed: dict[Reg, int],
    max_passes: int = 16,
) -> FoldStats:
    """Fold constants inside ``region_labels`` of ``function`` (in place).

    ``seed`` gives register values known to hold on entry to
    ``entry_label`` (the specialized value of the candidate register).
    """
    stats = FoldStats()
    in_envs = _solve_dataflow(function, region_labels, entry_label, seed, max_passes)
    if in_envs is None:
        return stats

    for label in list(function.layout()):
        if label in region_labels and label in function.blocks:
            _rewrite_block(function, label, dict(in_envs.get(label, {})), stats)

    stats.instructions_removed += _remove_unreachable(function, region_labels, stats)
    build_cfg(function)
    return stats


# ----------------------------------------------------------------------
# Phase 1: dataflow over constant environments
# ----------------------------------------------------------------------
def _solve_dataflow(
    function: Function,
    region_labels: set[str],
    entry_label: str,
    seed: dict[Reg, int],
    max_passes: int,
) -> Optional[dict[str, dict[Reg, int]]]:
    in_envs: dict[str, dict[Reg, int]] = {entry_label: dict(seed)}
    out_envs: dict[str, dict[Reg, int]] = {}

    for _ in range(max_passes):
        changed = False
        for label in function.layout():
            if label not in region_labels or label not in function.blocks:
                continue
            env_in = _merge_predecessors(function, label, entry_label, seed, out_envs, region_labels)
            if in_envs.get(label) != env_in:
                in_envs[label] = env_in
                changed = True
            env_out = _simulate_block(function.blocks[label].instructions, dict(env_in))
            if out_envs.get(label) != env_out:
                out_envs[label] = env_out
                changed = True
        if not changed:
            return in_envs
    return None


def _merge_predecessors(
    function: Function,
    label: str,
    entry_label: str,
    seed: dict[Reg, int],
    out_envs: dict[str, dict[Reg, int]],
    region_labels: set[str],
) -> dict[Reg, int]:
    if label == entry_label:
        return dict(seed)
    merged: Optional[dict[Reg, int]] = None
    for pred in function.blocks[label].predecessors:
        if pred not in region_labels:
            return {}
        pred_env = out_envs.get(pred, {})
        if merged is None:
            merged = dict(pred_env)
        else:
            merged = {reg: value for reg, value in merged.items() if pred_env.get(reg) == value}
    return merged or {}


def _simulate_block(instructions: list[Instruction], env: dict[Reg, int]) -> dict[Reg, int]:
    for inst in instructions:
        value = _result_if_constant(inst, env)
        if value is not None and inst.dest is not None:
            env[inst.dest] = value
            continue
        for reg in inst.defs():
            env.pop(reg, None)
        if inst.is_call:
            for reg in call_defined_registers(None):
                env.pop(reg, None)
    return env


def _result_if_constant(inst: Instruction, env: dict[Reg, int]) -> Optional[int]:
    if inst.kind not in _FOLDABLE_KINDS or inst.dest is None:
        return None
    operands = _constant_operands(inst, env)
    if operands is None:
        return None
    return evaluate_operation(inst.op, inst.width, operands)


# ----------------------------------------------------------------------
# Phase 2: rewriting
# ----------------------------------------------------------------------
def _rewrite_block(
    function: Function, label: str, env: dict[Reg, int], stats: FoldStats
) -> None:
    block = function.blocks[label]
    new_instructions: list[Instruction] = []
    for inst in block.instructions:
        value = _result_if_constant(inst, env)
        if value is not None and inst.dest is not None and inst.op is not Opcode.LI:
            new_instructions.append(
                Instruction(
                    op=Opcode.LI,
                    dest=inst.dest,
                    srcs=(Imm(value),),
                    origin=inst.origin if inst.origin is not None else inst.uid,
                    comment="folded",
                )
            )
            env[inst.dest] = value
            stats.folded_to_constant += 1
            continue
        if inst.is_conditional_branch:
            condition = _operand_value(inst.srcs[0], env)
            if condition is not None:
                taken = BRANCH_SEMANTICS[inst.op](condition)
                stats.branches_resolved += 1
                if taken:
                    new_instructions.append(
                        Instruction(op=Opcode.BR, target=inst.target, origin=inst.origin or inst.uid)
                    )
                else:
                    stats.instructions_removed += 1
                continue
        if value is not None and inst.dest is not None:
            env[inst.dest] = value
        else:
            for reg in inst.defs():
                env.pop(reg, None)
            if inst.is_call:
                for reg in call_defined_registers(None):
                    env.pop(reg, None)
        new_instructions.append(inst)
    block.instructions = new_instructions


def _constant_operands(inst: Instruction, env: dict[Reg, int]) -> Optional[list[int]]:
    values: list[int] = []
    for operand in inst.srcs:
        value = _operand_value(operand, env)
        if value is None:
            return None
        values.append(value)
    return values


def _operand_value(operand, env: dict[Reg, int]) -> Optional[int]:
    if isinstance(operand, Imm):
        return operand.value
    if isinstance(operand, Reg):
        if operand.is_zero:
            return 0
        return env.get(operand)
    return None


def _remove_unreachable(function: Function, region_labels: set[str], stats: FoldStats) -> int:
    """Remove region blocks that became unreachable after branch folding."""
    build_cfg(function)
    removed_instructions = 0
    changed = True
    while changed:
        changed = False
        for label in list(function.layout()):
            if label not in region_labels or label not in function.blocks:
                continue
            block = function.blocks[label]
            if block.predecessors:
                continue
            removed_instructions += len(block.instructions)
            stats.blocks_removed.append(label)
            function.remove_block(label)
            build_cfg(function)
            changed = True
    return removed_instructions
