"""The VRS code transformation: region cloning behind a range guard (§3.4).

Specializing an instruction ``I`` (whose output register is ``r``) for the
range ``[min, max]`` rewrites the function as follows::

      ... I ...                      ...
      rest of I's block       →      I
      successors...                  <range guard on r>  --taken--> clone entry
                                     rest of I's block (original)
                                     ...
                                     clone of every block dominated by
                                     the rest of I's block, with branch
                                     targets remapped into the clone

The guard is two comparisons, an AND and a conditional branch for a real
range, one comparison and a branch for a single non-zero value, and a lone
branch for the value zero, matching the costs of §3.2.  The cloned region
re-joins the original code at the region's exits.  When ``min == max`` the
clone is further simplified by constant propagation
(:mod:`repro.core.constprop`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa import Imm, Instruction, Opcode, Reg
from ..ir import BasicBlock, Function, build_cfg, compute_dominators
from .constprop import FoldStats, fold_constants_in_region
from .value_range import ValueRange

__all__ = ["SpecializationRecord", "specialize_candidate", "GUARD_SCRATCH_REGISTERS"]

#: Registers reserved for guard computations.  The mini-C code generator
#: never allocates them (its temporaries are r1-r8, locals r9-r15), so they
#: are guaranteed dead at any program point of compiled workloads.  Hand
#: written assembly that uses them must not be fed to VRS.
GUARD_SCRATCH_REGISTERS = (Reg(27), Reg(28), Reg(25))


@dataclass
class SpecializationRecord:
    """Bookkeeping for one applied specialization."""

    candidate_uid: int
    function: str
    value_range: ValueRange
    guard_label: str
    clone_entry_label: str
    original_region_labels: set[str] = field(default_factory=set)
    cloned_labels: set[str] = field(default_factory=set)
    guard_uids: set[int] = field(default_factory=set)
    cloned_uids: set[int] = field(default_factory=set)
    cloned_instructions: int = 0
    fold_stats: FoldStats = field(default_factory=FoldStats)


_counter = 0


def _next_id() -> int:
    global _counter
    _counter += 1
    return _counter


def specialize_candidate(
    function: Function,
    candidate_uid: int,
    value_range: ValueRange,
    apply_constant_propagation: bool = True,
) -> Optional[SpecializationRecord]:
    """Apply the VRS transformation for one candidate.

    Returns ``None`` when the candidate cannot be specialized (it no longer
    exists, produces no register result, or its tail region is empty).
    """
    build_cfg(function)
    location = function.find_instruction(candidate_uid)
    if location is None:
        return None
    block, index = location
    candidate = block.instructions[index]
    if candidate.dest is None or candidate.dest.is_zero or candidate.is_control:
        return None

    spec_id = _next_id()
    tail_label = _split_block(function, block, index, spec_id)
    if tail_label is None:
        return None

    build_cfg(function)
    dom = compute_dominators(function)
    region_labels = {
        label for label in dom.dominated_region(tail_label) if label in function.blocks
    }

    record = SpecializationRecord(
        candidate_uid=candidate_uid,
        function=function.name,
        value_range=value_range,
        guard_label=block.label,
        clone_entry_label=f"spec{spec_id}_{tail_label}",
        original_region_labels=set(region_labels),
    )

    clone_map = _clone_region(function, region_labels, spec_id, record)
    _emit_guard(block, candidate.dest, value_range, clone_map[tail_label], record)
    build_cfg(function)

    if apply_constant_propagation and value_range.is_constant:
        record.fold_stats = fold_constants_in_region(
            function,
            record.cloned_labels,
            clone_map[tail_label],
            {candidate.dest: value_range.lo},
        )
    build_cfg(function)
    return record


# ----------------------------------------------------------------------
# Block surgery
# ----------------------------------------------------------------------
def _split_block(function: Function, block: BasicBlock, index: int, spec_id: int) -> Optional[str]:
    """Split ``block`` after position ``index``; return the tail block label."""
    tail_instructions = block.instructions[index + 1 :]
    if not tail_instructions:
        return None
    tail_label = function.unique_label(f"{block.label}_tail{spec_id}")
    tail = BasicBlock(tail_label, tail_instructions)
    block.instructions = block.instructions[: index + 1]
    function.add_block(tail, after=block.label)
    return tail_label


def _clone_region(
    function: Function,
    region_labels: set[str],
    spec_id: int,
    record: SpecializationRecord,
) -> dict[str, str]:
    """Clone every region block, remapping intra-region branch targets."""
    layout_order = [label for label in function.layout() if label in region_labels]
    clone_map = {label: f"spec{spec_id}_{label}" for label in layout_order}

    previous_clone: Optional[str] = None
    for position, label in enumerate(layout_order):
        original = function.blocks[label]
        clone_label = clone_map[label]
        clone = BasicBlock(clone_label)
        for inst in original.instructions:
            copy = inst.clone()
            if copy.is_branch and copy.target in clone_map:
                copy.target = clone_map[copy.target]
            clone.append(copy)
            record.cloned_uids.add(copy.uid)
        function.add_block(clone, after=previous_clone)
        record.cloned_labels.add(clone_label)
        record.cloned_instructions += len(clone.instructions)
        previous_clone = clone_label

        # Preserve fall-through behaviour: if the original block can fall
        # through, the clone must reach the same (cloned) successor even
        # though it now lives at the end of the function.
        if original.falls_through:
            fallthrough = function.block_after(label)
            if fallthrough is None:
                continue
            target = clone_map.get(fallthrough.label, fallthrough.label)
            next_original = layout_order[position + 1] if position + 1 < len(layout_order) else None
            if next_original is not None and clone_map.get(fallthrough.label) == clone_map[next_original]:
                # The natural fall-through lands on the next clone already.
                continue
            stub_label = function.unique_label(f"spec{spec_id}_ft_{label}")
            stub = BasicBlock(stub_label)
            stub.append(Instruction(op=Opcode.BR, target=target))
            function.add_block(stub, after=previous_clone)
            record.cloned_labels.add(stub_label)
            previous_clone = stub_label
    return clone_map


def _emit_guard(
    block: BasicBlock,
    reg: Reg,
    value_range: ValueRange,
    clone_entry: str,
    record: SpecializationRecord,
) -> None:
    """Append the runtime range test to ``block`` (which now ends after I)."""
    t1, t2, t3 = GUARD_SCRATCH_REGISTERS
    guard: list[Instruction] = []
    if value_range.is_constant and value_range.lo == 0:
        guard.append(Instruction(op=Opcode.BEQ, srcs=(reg,), target=clone_entry, is_guard=True))
    elif value_range.is_constant:
        guard.append(
            Instruction(
                op=Opcode.CMPEQ, dest=t1, srcs=(reg, Imm(value_range.lo)), is_guard=True
            )
        )
        guard.append(Instruction(op=Opcode.BNE, srcs=(t1,), target=clone_entry, is_guard=True))
    else:
        guard.append(
            Instruction(op=Opcode.CMPLE, dest=t1, srcs=(Imm(value_range.lo), reg), is_guard=True)
        )
        guard.append(
            Instruction(op=Opcode.CMPLE, dest=t2, srcs=(reg, Imm(value_range.hi)), is_guard=True)
        )
        guard.append(Instruction(op=Opcode.AND, dest=t3, srcs=(t1, t2), is_guard=True))
        guard.append(Instruction(op=Opcode.BNE, srcs=(t3,), target=clone_entry, is_guard=True))
    for inst in guard:
        block.append(inst)
        record.guard_uids.add(inst.uid)
