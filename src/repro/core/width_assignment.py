"""Opcode width assignment (§2, "proper opcode assignment").

After value ranges and useful bits are known, every eligible instruction is
re-encoded with the narrowest width variant its ISA opcode offers that can
hold the required number of bits.  Memory operations keep their declared
access width and control-flow instructions are not re-encoded (they
manipulate addresses — §4.3).
"""

from __future__ import annotations

from typing import Optional

from ..isa import Instruction, OpKind, Width, narrowest_available_width
from .propagation import FunctionAnalysis

__all__ = ["width_for_bits", "required_width", "NARROWABLE_KINDS"]

#: Instruction kinds whose opcodes may be re-encoded to a narrower width.
NARROWABLE_KINDS = frozenset(
    {
        OpKind.ALU,
        OpKind.MUL,
        OpKind.LOGICAL,
        OpKind.SHIFT,
        OpKind.COMPARE,
        OpKind.CMOV,
        OpKind.MASK,
        OpKind.EXTEND,
        OpKind.MOVE,
    }
)


def width_for_bits(bits: int) -> Width:
    """Narrowest ISA width with at least ``bits`` bits."""
    for width in Width.all_widths():
        if width.bits >= bits:
            return width
    return Width.QUAD


def required_width(inst: Instruction, analysis: FunctionAnalysis) -> Optional[Width]:
    """Width required by ``inst`` under ``analysis``.

    Returns ``None`` for instructions that are not re-encoded (memory,
    control flow, output traps).
    """
    kind = inst.kind
    if kind not in NARROWABLE_KINDS:
        return None

    if kind is OpKind.COMPARE:
        # A comparison must observe its operands in full; its requirement is
        # driven by the operand value ranges, not by its 0/1 result.
        needed = Width.BYTE
        for reg in inst.source_registers():
            needed = max(needed, analysis.operand_range(inst, reg).width())
        return needed

    output = analysis.output_range(inst)
    value_width = output.width() if output is not None else Width.QUAD
    useful_width = width_for_bits(analysis.output_useful_bits(inst))
    needed = min(value_width, useful_width)

    if kind is OpKind.SHIFT and inst.op.value in ("srl", "sra"):
        # Right shifts expose high input bits in low output bits, so the
        # operand being shifted must be read in full.
        value_operand = inst.source_registers()
        if value_operand:
            needed = max(needed, analysis.operand_range(inst, value_operand[0]).width())
    return needed


def assign_function_widths(analysis: FunctionAnalysis) -> dict[int, Width]:
    """Assigned width for every instruction of one analysed function.

    The assignment never widens an instruction beyond its current encoding
    (the current encoding's wrap-around behaviour is part of the program's
    semantics) and respects the width variants the ISA actually offers.
    """
    widths: dict[int, Width] = {}
    for inst in analysis.function.instructions():
        needed = required_width(inst, analysis)
        if needed is None:
            widths[inst.uid] = inst.width
            continue
        encodable = narrowest_available_width(inst.op, needed)
        widths[inst.uid] = min(encodable, inst.width)
    return widths
