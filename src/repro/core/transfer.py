"""Forward transfer functions: output range from input ranges (§2.2).

Each function computes the value range of an instruction's result given
the ranges of its operands, conservatively accounting for two's-complement
wrap-around at the instruction's encoded width.
"""

from __future__ import annotations

from typing import Optional

from ..isa import Instruction, OpKind, Opcode, Width
from .value_range import FULL_RANGE, ValueRange, range_for_width

__all__ = ["forward_transfer", "LOAD_RESULT_RANGES"]

#: Forward range of a load result, determined purely by the opcode
#: (§2.2.2): byte/halfword loads zero-extend, word loads sign-extend.
LOAD_RESULT_RANGES = {
    Opcode.LDB: ValueRange(0, 0xFF),
    Opcode.LDH: ValueRange(0, 0xFFFF),
    Opcode.LDW: range_for_width(Width.WORD),
    Opcode.LDQ: FULL_RANGE,
}

_MASK_RESULT = {
    Opcode.MSKB: ValueRange(0, 0xFF),
    Opcode.MSKW: ValueRange(0, 0xFFFF),
    Opcode.MSKL: ValueRange(0, 0xFFFFFFFF),
    Opcode.SEXTB: range_for_width(Width.BYTE),
    Opcode.SEXTW: range_for_width(Width.HALF),
    Opcode.SEXTL: range_for_width(Width.WORD),
}


def forward_transfer(
    inst: Instruction,
    src_ranges: list[ValueRange],
    dest_old: Optional[ValueRange] = None,
) -> Optional[ValueRange]:
    """Range of the value produced by ``inst``.

    ``src_ranges`` are the ranges of ``inst.srcs`` in order (immediates are
    constant ranges).  ``dest_old`` is the range of the previous value of
    the destination register, needed only by conditional moves.  Returns
    ``None`` for instructions that produce no register result.
    """
    kind = inst.kind
    op = inst.op
    width = inst.width

    if kind is OpKind.LOAD:
        return LOAD_RESULT_RANGES[op]
    if kind in (OpKind.STORE, OpKind.BRANCH, OpKind.RETURN, OpKind.HALT, OpKind.NOP, OpKind.OUTPUT):
        return None
    if kind is OpKind.CALL:
        # The call instruction itself writes the return address (wide).
        return FULL_RANGE
    if kind is OpKind.MASK or kind is OpKind.EXTEND:
        result = _MASK_RESULT[op]
        source = src_ranges[0]
        narrowed = source.intersect(result)
        if narrowed is not None and result.contains_range(source):
            return source
        return result
    if kind is OpKind.COMPARE:
        return ValueRange(0, 1)
    if kind is OpKind.CMOV:
        value = src_ranges[1].clamp(width)
        old = dest_old if dest_old is not None else FULL_RANGE
        return value.union(old)
    if kind is OpKind.MOVE:
        if op is Opcode.LI:
            return src_ranges[0]
        if op is Opcode.MOV:
            return src_ranges[0]
        # LDA: base + displacement.
        return _add(src_ranges[0], src_ranges[1], Width.QUAD)
    if kind is OpKind.ALU:
        if op is Opcode.ADD:
            return _add(src_ranges[0], src_ranges[1], width)
        return _sub(src_ranges[0], src_ranges[1], width)
    if kind is OpKind.MUL:
        return _mul(src_ranges[0], src_ranges[1], width)
    if kind is OpKind.LOGICAL:
        return _logical(op, src_ranges[0], src_ranges[1], width)
    if kind is OpKind.SHIFT:
        return _shift(op, src_ranges[0], src_ranges[1], width)
    return FULL_RANGE  # pragma: no cover - every kind is handled above


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def _add(a: ValueRange, b: ValueRange, width: Width) -> ValueRange:
    return ValueRange(a.lo + b.lo, a.hi + b.hi).clamp(width)


def _sub(a: ValueRange, b: ValueRange, width: Width) -> ValueRange:
    return ValueRange(a.lo - b.hi, a.hi - b.lo).clamp(width)


def _mul(a: ValueRange, b: ValueRange, width: Width) -> ValueRange:
    corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return ValueRange(min(corners), max(corners)).clamp(width)


# ----------------------------------------------------------------------
# Logical operations
# ----------------------------------------------------------------------
def _logical(op: Opcode, a: ValueRange, b: ValueRange, width: Width) -> ValueRange:
    if op is Opcode.AND:
        # AND with a non-negative operand bounds the result by that operand.
        candidates = []
        if a.is_nonnegative:
            candidates.append(a.hi)
        if b.is_nonnegative:
            candidates.append(b.hi)
        if candidates:
            return ValueRange(0, min(candidates)).clamp(width)
        return range_for_width(width)
    if op is Opcode.OR or op is Opcode.XOR:
        if a.is_nonnegative and b.is_nonnegative:
            bits = max(a.hi.bit_length(), b.hi.bit_length(), 1)
            return ValueRange(0, (1 << bits) - 1).clamp(width)
        return range_for_width(width)
    # BIC: a & ~b — bounded by a when a is non-negative.
    if a.is_nonnegative:
        return ValueRange(0, a.hi).clamp(width)
    return range_for_width(width)


# ----------------------------------------------------------------------
# Shifts
# ----------------------------------------------------------------------
def _shift(op: Opcode, value: ValueRange, amount: ValueRange, width: Width) -> ValueRange:
    # The shift amount field is 6 bits (§2.2.5: its useful range is 0..63).
    # Amount ranges that are not fully inside [0, 63] wrap modulo 64, so the
    # only safe assumption is that any shift amount may occur.
    if amount.lo < 0 or amount.hi > 63:
        lo_shift, hi_shift = 0, 63
    else:
        lo_shift, hi_shift = amount.lo, amount.hi
    if op is Opcode.SLL:
        corners = [
            value.lo << lo_shift,
            value.lo << hi_shift,
            value.hi << lo_shift,
            value.hi << hi_shift,
        ]
        return ValueRange(min(corners), max(corners)).clamp(width)
    if op is Opcode.SRA:
        corners = [
            value.lo >> lo_shift,
            value.lo >> hi_shift,
            value.hi >> lo_shift,
            value.hi >> hi_shift,
        ]
        return ValueRange(min(corners), max(corners)).clamp(width)
    # SRL: a logical right shift of a negative value produces a huge
    # positive number; only non-negative inputs give a useful bound.
    if value.is_nonnegative:
        return ValueRange(value.lo >> hi_shift, value.hi >> lo_shift).clamp(width)
    return range_for_width(width)
