"""Per-function value range propagation engine (§2.2).

The engine alternates forward sweeps over the data-dependence graph until
the ranges stabilise (or an iteration budget is reached, in which case the
still-changing definitions are conservatively widened).  It integrates:

* the forward transfer functions (:mod:`repro.core.transfer`),
* branch-condition refinement (:mod:`repro.core.refinement`),
* loop trip-count pinning (:mod:`repro.core.trip_count`),
* the backward useful-bits pass (:mod:`repro.core.useful`), and
* interprocedural parameter / return-value ranges supplied by the driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa import ARG_REGISTERS, Imm, Instruction, OpKind, RETURN_VALUE, Reg
from ..ir import (
    Definition,
    DependenceGraph,
    Function,
    Program,
    build_dependence_graph,
    compute_dominators,
    find_loops,
    reverse_postorder,
)
from .refinement import BranchConstraints, compute_branch_constraints
from .transfer import forward_transfer
from .trip_count import LoopPins, analyze_loop_iterators
from .useful import UsefulBitsConfig, compute_useful_bits
from .value_range import FULL_RANGE, ValueRange

__all__ = ["VRPConfig", "FunctionAnalysis", "FunctionVRP"]


@dataclass(frozen=True)
class VRPConfig:
    """Configuration of the value range propagation analysis.

    The defaults correspond to the paper's *proposed* VRP; switching
    ``useful_propagation`` off yields the *conventional* VRP used as the
    comparison point in Figure 2.
    """

    useful_propagation: bool = True
    useful_through_arithmetic: bool = True
    loop_trip_count: bool = True
    branch_refinement: bool = True
    interprocedural: bool = True
    max_iterations: int = 8
    global_iterations: int = 3

    def conventional(self) -> "VRPConfig":
        """The conventional-VRP variant of this configuration."""
        return VRPConfig(
            useful_propagation=False,
            useful_through_arithmetic=False,
            loop_trip_count=self.loop_trip_count,
            branch_refinement=self.branch_refinement,
            interprocedural=self.interprocedural,
            max_iterations=self.max_iterations,
            global_iterations=self.global_iterations,
        )


@dataclass
class FunctionAnalysis:
    """Result of value range propagation over one function."""

    function: Function
    graph: DependenceGraph
    def_range: dict[Definition, ValueRange] = field(default_factory=dict)
    use_range: dict[tuple[int, Reg], ValueRange] = field(default_factory=dict)
    useful_bits: dict[Definition, int] = field(default_factory=dict)
    return_range: ValueRange = FULL_RANGE
    pins: LoopPins = field(default_factory=LoopPins)

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    def output_range(self, inst: Instruction) -> Optional[ValueRange]:
        """Range of the value produced by ``inst`` (None when no result)."""
        for reg in inst.defs():
            return self.def_range.get(Definition("inst", reg, uid=inst.uid))
        return None

    def operand_range(self, inst: Instruction, reg: Reg) -> ValueRange:
        """Range of the value ``inst`` reads from ``reg``."""
        return self.use_range.get((inst.uid, reg), FULL_RANGE)

    def output_useful_bits(self, inst: Instruction) -> int:
        """Useful low bits of the value produced by ``inst`` (64 if unknown)."""
        bits = 0
        for reg in inst.defs():
            bits = max(bits, self.useful_bits.get(Definition("inst", reg, uid=inst.uid), 0))
        return bits if bits > 0 else 64


class FunctionVRP:
    """Runs value range propagation over a single function."""

    def __init__(
        self,
        function: Function,
        program: Program,
        config: VRPConfig,
        param_ranges: Optional[dict[Reg, ValueRange]] = None,
        return_ranges: Optional[dict[str, ValueRange]] = None,
    ) -> None:
        self.function = function
        self.program = program
        self.config = config
        self.param_ranges = dict(param_ranges or {})
        self.return_ranges = dict(return_ranges or {})

        self.graph = build_dependence_graph(function, program)
        self.dom = compute_dominators(function)
        self.loops = find_loops(function, self.dom)
        self.constraints: Optional[BranchConstraints] = None
        if config.branch_refinement:
            self.constraints = compute_branch_constraints(function, self.dom, self.graph)

        self._def_range: dict[Definition, ValueRange] = {}
        self._use_range: dict[tuple[int, Reg], ValueRange] = {}
        self._pins = LoopPins()
        self._order = reverse_postorder(function)
        self._uses_by_inst: dict[int, list[Reg]] = {}
        for (uid, reg) in self.graph.use_def:
            self._uses_by_inst.setdefault(uid, []).append(reg)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(self) -> FunctionAnalysis:
        self._seed_external_definitions()

        converged = False
        for _ in range(self.config.max_iterations):
            if not self._forward_pass(widen=False):
                converged = True
                break
        if not converged:
            # Widen whatever is still in flux, then settle.
            for _ in range(4):
                if not self._forward_pass(widen=True):
                    break

        useful = {}
        if self.config.useful_propagation:
            useful = compute_useful_bits(
                self.function,
                self.graph,
                UsefulBitsConfig(through_arithmetic=self.config.useful_through_arithmetic),
            )

        analysis = FunctionAnalysis(
            function=self.function,
            graph=self.graph,
            def_range=self._def_range,
            use_range=self._use_range,
            useful_bits=useful,
            return_range=self._return_range(),
            pins=self._pins,
        )
        return analysis

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def _seed_external_definitions(self) -> None:
        params = set(ARG_REGISTERS[: self.function.num_params])
        for reg_index in range(32):
            reg = Reg(reg_index)
            definition = Definition("entry", reg)
            if reg in params and reg in self.param_ranges:
                self._def_range[definition] = self.param_ranges[reg]
            else:
                self._def_range[definition] = FULL_RANGE
        for inst in self.function.instructions():
            if not inst.is_call:
                continue
            from ..ir import call_defined_registers

            for reg in call_defined_registers(None):
                definition = Definition("call", reg, uid=inst.uid, callee=inst.target)
                if reg == RETURN_VALUE and inst.target in self.return_ranges:
                    self._def_range[definition] = self.return_ranges[inst.target]
                else:
                    self._def_range[definition] = FULL_RANGE

    # ------------------------------------------------------------------
    # Forward sweeps
    # ------------------------------------------------------------------
    def _forward_pass(self, widen: bool) -> bool:
        changed = False
        if self.config.loop_trip_count:
            self._pins = analyze_loop_iterators(
                self.function, self.loops, self.graph, self._def_range.get
            )
        for label in self._order:
            block = self.function.blocks[label]
            for inst in block.instructions:
                changed |= self._visit(inst, label, widen)
        return changed

    def _visit(self, inst: Instruction, block_label: str, widen: bool) -> bool:
        changed = False
        # 1. Ranges of every register this instruction reads.
        reg_ranges: dict[Reg, ValueRange] = {}
        for reg in self._uses_by_inst.get(inst.uid, ()):
            value = self._join_reaching(inst, reg)
            if value is None:
                continue
            pinned = self._pins.use_ranges.get((inst.uid, reg))
            if pinned is not None:
                value = pinned
            elif self.constraints is not None:
                value = self.constraints.refine(block_label, reg, value)
            reg_ranges[reg] = value
            if self._use_range.get((inst.uid, reg)) != value:
                self._use_range[(inst.uid, reg)] = value
                changed = True

        # 2. Range of the produced value.
        if inst.dest is None or inst.dest.is_zero or inst.is_call:
            return changed
        src_ranges = [self._operand_range(operand, reg_ranges) for operand in inst.srcs]
        if any(r is None for r in src_ranges):
            return changed
        dest_old = reg_ranges.get(inst.dest) if inst.kind is OpKind.CMOV else None
        result = forward_transfer(inst, src_ranges, dest_old)
        if result is None:
            return changed
        pinned = self._pins.def_ranges.get(inst.uid)
        if pinned is not None:
            result = pinned
        definition = Definition("inst", inst.dest, uid=inst.uid)
        previous = self._def_range.get(definition)
        if widen and previous is not None and result != previous:
            result = self._worst_case(inst)
        if previous != result:
            self._def_range[definition] = result
            return True
        return changed

    def _join_reaching(self, inst: Instruction, reg: Reg) -> Optional[ValueRange]:
        if reg.is_zero:
            return ValueRange.constant(0)
        joined: Optional[ValueRange] = None
        for definition in self.graph.reaching_definitions(inst, reg):
            value = self._def_range.get(definition)
            if value is None:
                continue
            joined = value if joined is None else joined.union(value)
        return joined

    @staticmethod
    def _operand_range(operand, reg_ranges: dict[Reg, ValueRange]) -> Optional[ValueRange]:
        if isinstance(operand, Imm):
            return ValueRange.constant(operand.value)
        if operand.is_zero:
            return ValueRange.constant(0)
        return reg_ranges.get(operand)

    def _worst_case(self, inst: Instruction) -> ValueRange:
        """A stable, always-sound range for ``inst`` (all inputs unknown)."""
        src_ranges = [FULL_RANGE for _ in inst.srcs]
        result = forward_transfer(inst, src_ranges, FULL_RANGE)
        return result if result is not None else FULL_RANGE

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def _return_range(self) -> ValueRange:
        defs = self.graph.exit_definitions.get(RETURN_VALUE, set())
        joined: Optional[ValueRange] = None
        for definition in defs:
            value = self._def_range.get(definition, FULL_RANGE)
            joined = value if joined is None else joined.union(value)
        return joined if joined is not None else FULL_RANGE
