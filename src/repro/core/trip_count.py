"""Loop trip-count / induction-variable analysis (§2.3).

VRP handles loops whose iterator has the affine form ``x = x + b`` with a
constant bound tested in the loop header (``for (i = c0; i < c1; i += b)``).
For such loops the range of the iterator inside the loop is known exactly,
which stops the interval fixed point from widening it to the full range of
the operation's width.

The analysis produces *pins*: value ranges for the iterator's increment
definition and for its use inside the increment, which the propagation
engine uses verbatim instead of the generic transfer function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..isa import Imm, Instruction, Opcode, Reg
from ..ir import DependenceGraph, Definition, Function, Loop
from .value_range import ValueRange

__all__ = ["LoopPins", "analyze_loop_iterators"]


@dataclass
class LoopPins:
    """Ranges pinned by the trip-count analysis."""

    #: Pinned range for a definition (keyed by the defining instruction uid).
    def_ranges: dict[int, ValueRange] = field(default_factory=dict)
    #: Pinned range for a particular use (instruction uid, register).
    use_ranges: dict[tuple[int, Reg], ValueRange] = field(default_factory=dict)
    #: Number of loops whose iterator was successfully bounded.
    bounded_loops: int = 0
    #: Number of loops examined.
    examined_loops: int = 0

    def merge(self, other: "LoopPins") -> None:
        self.def_ranges.update(other.def_ranges)
        self.use_ranges.update(other.use_ranges)
        self.bounded_loops += other.bounded_loops
        self.examined_loops += other.examined_loops


RangeOracle = Callable[[Definition], Optional[ValueRange]]


def analyze_loop_iterators(
    function: Function,
    loops: list[Loop],
    graph: DependenceGraph,
    initial_range_of: RangeOracle,
) -> LoopPins:
    """Compute iterator pins for every analysable loop of ``function``.

    ``initial_range_of`` maps a definition to its currently known range (or
    ``None``); it is supplied by the propagation engine so that the analysis
    can use up-to-date ranges for the iterator's initial value.
    """
    pins = LoopPins()
    for loop in loops:
        pins.examined_loops += 1
        loop_pins = _analyze_one_loop(function, loop, graph, initial_range_of)
        if loop_pins is not None:
            pins.merge(loop_pins)
            pins.bounded_loops += 1
    return pins


def _analyze_one_loop(
    function: Function,
    loop: Loop,
    graph: DependenceGraph,
    initial_range_of: RangeOracle,
) -> Optional[LoopPins]:
    header = function.blocks[loop.header]
    terminator = header.terminator
    if terminator is None or terminator.op not in (Opcode.BEQ, Opcode.BNE):
        return None

    compare = _compare_feeding(graph, terminator)
    if compare is None:
        return None
    iterator, bound, register_on_left = _split_compare(compare)
    if iterator is None or bound is None:
        return None

    stays = _stay_predicate(function, loop, terminator, compare, register_on_left)
    if stays is None:
        return None
    stay_op, bound_side_left = stays

    increment = _find_increment(function, loop, iterator)
    if increment is None:
        return None
    step = _step_of(increment)
    if step is None or step == 0:
        return None

    init_range = _initial_range(graph, compare, iterator, increment, initial_range_of)
    if init_range is None:
        return None

    body_range = _body_range(stay_op, bound_side_left, bound, step, init_range)
    if body_range is None:
        return None

    pins = LoopPins()
    pins.def_ranges[increment.uid] = ValueRange(body_range.lo + step, body_range.hi + step)
    pins.use_ranges[(increment.uid, iterator)] = body_range
    return pins


# ----------------------------------------------------------------------
# Pattern matching helpers
# ----------------------------------------------------------------------
def _compare_feeding(graph: DependenceGraph, branch: Instruction) -> Optional[Instruction]:
    sources = branch.source_registers()
    if len(sources) != 1:
        return None
    defs = graph.reaching_definitions(branch, sources[0])
    if len(defs) != 1:
        return None
    inst = graph.definition_instruction(next(iter(defs)))
    if inst is None or inst.op not in (Opcode.CMPLT, Opcode.CMPLE):
        return None
    return inst


def _split_compare(compare: Instruction) -> tuple[Optional[Reg], Optional[int], bool]:
    """Return (iterator register, constant bound, register_on_left)."""
    left, right = compare.srcs
    if isinstance(left, Reg) and isinstance(right, Imm):
        return left, right.value, True
    if isinstance(left, Imm) and isinstance(right, Reg):
        return right, left.value, False
    return None, None, True


def _stay_predicate(
    function: Function,
    loop: Loop,
    branch: Instruction,
    compare: Instruction,
    register_on_left: bool,
) -> Optional[tuple[Opcode, bool]]:
    """Determine under which comparison outcome control stays in the loop.

    Returns (compare opcode, bound_side_left) where ``bound_side_left`` is
    True when the constant is on the *right* of the comparison (i.e. the
    pattern is ``iterator < bound``), matching :func:`_header_range`.
    """
    header_block = function.blocks[loop.header]
    taken = branch.target
    fallthrough = [s for s in header_block.successors if s != taken]
    if not fallthrough:
        return None
    taken_in_loop = taken in loop.blocks
    fallthrough_in_loop = fallthrough[0] in loop.blocks
    if taken_in_loop == fallthrough_in_loop:
        return None

    # The comparison result is non-zero when the predicate holds; BNE takes
    # the branch in that case, BEQ takes it when the predicate fails.
    predicate_holds_stays = (
        taken_in_loop if branch.op is Opcode.BNE else fallthrough_in_loop
    )
    if not predicate_holds_stays:
        # Control stays in the loop when the predicate FAILS.  The negation
        # of ``a < b`` is ``b <= a`` and of ``a <= b`` is ``b < a``: the
        # comparison flips strictness and the bound changes sides.
        negated_op = Opcode.CMPLE if compare.op is Opcode.CMPLT else Opcode.CMPLT
        return negated_op, not register_on_left
    return compare.op, register_on_left


def _find_increment(function: Function, loop: Loop, iterator: Reg) -> Optional[Instruction]:
    """The unique in-loop definition ``iterator = iterator ± constant``."""
    found: Optional[Instruction] = None
    for label in loop.blocks:
        for inst in function.blocks[label].instructions:
            if iterator not in inst.defs():
                if inst.is_call and not iterator.is_zero:
                    from ..ir import call_defined_registers

                    if iterator in call_defined_registers(None):
                        return None
                continue
            if found is not None:
                return None
            if inst.op not in (Opcode.ADD, Opcode.SUB, Opcode.LDA):
                return None
            if not (isinstance(inst.srcs[0], Reg) and inst.srcs[0] == iterator):
                return None
            if not isinstance(inst.srcs[1], Imm):
                return None
            found = inst
    return found


def _step_of(increment: Instruction) -> Optional[int]:
    amount = increment.srcs[1]
    if not isinstance(amount, Imm):
        return None
    if increment.op is Opcode.SUB:
        return -amount.value
    return amount.value


def _initial_range(
    graph: DependenceGraph,
    compare: Instruction,
    iterator: Reg,
    increment: Instruction,
    initial_range_of: RangeOracle,
) -> Optional[ValueRange]:
    """Join of the iterator ranges flowing into the loop from outside."""
    defs = graph.reaching_definitions(compare, iterator)
    result: Optional[ValueRange] = None
    for definition in defs:
        if definition.kind == "inst" and definition.uid == increment.uid:
            continue
        known = initial_range_of(definition)
        if known is None or known.is_full:
            return None
        result = known if result is None else result.union(known)
    return result


def _body_range(
    op: Opcode, register_on_left: bool, bound: int, step: int, init: ValueRange
) -> Optional[ValueRange]:
    """Range of the iterator values for which the loop body executes."""
    if register_on_left:
        # iterator < bound (or <=) with a positive step counts upwards.
        if step <= 0:
            return None
        upper = bound - 1 if op is Opcode.CMPLT else bound
        if init.lo > upper:
            return None
        return ValueRange(init.lo, upper)
    # bound < iterator (or <=) with a negative step counts downwards.
    if step >= 0:
        return None
    lower = bound + 1 if op is Opcode.CMPLT else bound
    if init.hi < lower:
        return None
    return ValueRange(lower, init.hi)
