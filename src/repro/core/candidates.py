"""Candidate identification for Value Range Specialization (§3.3).

Profiling every instruction would be prohibitively expensive, so VRS first
selects *candidates*: instructions for which specialization could plausibly
pay off.  The filter performs the paper's preliminary benefit analysis — it
assumes the best possible outcome (the output collapses to a single narrow
value) and the cheapest possible test (a single comparison) and keeps the
instruction only if the estimated savings exceed that minimal cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import Instruction, OpKind, Width
from ..ir import Program
from .energy_model import EnergyModel, SavingsEstimator
from .value_range import ValueRange
from .vrp import VRPResult
from .width_assignment import NARROWABLE_KINDS

__all__ = ["Candidate", "identify_candidates"]

#: Instruction kinds worth profiling: everything re-encodable plus loads,
#: whose runtime values are invisible to the static analysis and therefore
#: the main source of specialization opportunities.
_CANDIDATE_KINDS = NARROWABLE_KINDS | {OpKind.LOAD}


@dataclass
class Candidate:
    """One instruction selected for value profiling."""

    function: str
    uid: int
    instruction: Instruction
    execution_count: int
    preliminary_benefit_nj: float


def identify_candidates(
    program: Program,
    vrp_result: VRPResult,
    instruction_counts: dict[int, int],
    model: EnergyModel | None = None,
    min_execution_count: int = 4,
) -> list[Candidate]:
    """Select the instructions whose values are worth profiling.

    The returned list is sorted by decreasing preliminary benefit.
    """
    model = model or EnergyModel()
    candidates: list[Candidate] = []
    best_case = ValueRange.constant(0)

    for function in program.iter_functions():
        if function.name == program.entry:
            continue
        analysis = vrp_result.analyses.get(function.name)
        if analysis is None:
            continue
        estimator = SavingsEstimator(
            analysis, instruction_counts, vrp_result.widths, model=model
        )
        for inst in function.instructions():
            if not _eligible(inst, vrp_result, analysis):
                continue
            count = instruction_counts.get(inst.uid, 0)
            if count < min_execution_count:
                continue
            savings, _ = estimator.savings_nj(inst, best_case)
            minimal_cost = count * model.guard.comparison_nj
            benefit = savings - minimal_cost
            if benefit > 0.0:
                candidates.append(
                    Candidate(
                        function=function.name,
                        uid=inst.uid,
                        instruction=inst,
                        execution_count=count,
                        preliminary_benefit_nj=benefit,
                    )
                )
    candidates.sort(key=lambda c: c.preliminary_benefit_nj, reverse=True)
    return candidates


def _eligible(inst: Instruction, vrp_result: VRPResult, analysis) -> bool:
    if inst.is_guard or inst.dest is None or inst.dest.is_zero:
        return False
    if inst.kind not in _CANDIDATE_KINDS:
        return False
    # Instructions that VRP already proved narrow leave nothing to gain.
    if vrp_result.width_of(inst.uid) <= Width.BYTE and inst.kind is not OpKind.LOAD:
        return False
    # Instructions whose static range is already a single value (address
    # moves, constant loads) cannot learn anything from profiling either.
    static_range = analysis.output_range(inst)
    if static_range is not None and static_range.is_constant:
        return False
    return True
