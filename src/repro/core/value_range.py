"""The value-range abstract domain used by VRP.

A :class:`ValueRange` is a closed interval ``[lo, hi]`` of signed 64-bit
values.  All transfer functions are *conservative*: whenever a result could
overflow the interval arithmetic (two's-complement wrap-around, §2.2.1) the
range widens to the full range representable at the instruction's encoded
width.  The absence of a known range is represented by the full 64-bit
range, exactly as the paper treats "unknown" operands.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import INT64_MAX, INT64_MIN, Width, width_for_signed_range

__all__ = ["ValueRange", "FULL_RANGE", "range_for_width", "bits_needed_for_mask"]


@dataclass(frozen=True)
class ValueRange:
    """A closed interval of signed 64-bit integer values."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty value range [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def full() -> "ValueRange":
        """The unknown / worst-case range (all 64-bit values)."""
        return FULL_RANGE

    @staticmethod
    def constant(value: int) -> "ValueRange":
        """The range holding a single value."""
        return ValueRange(value, value)

    @staticmethod
    def of_width(width: Width) -> "ValueRange":
        """All values representable at ``width`` (signed)."""
        return range_for_width(width)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        return self.lo <= INT64_MIN and self.hi >= INT64_MAX

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    @property
    def is_nonnegative(self) -> bool:
        return self.lo >= 0

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def contains_range(self, other: "ValueRange") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def union(self, other: "ValueRange") -> "ValueRange":
        """Smallest range containing both (the conservative join)."""
        return ValueRange(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "ValueRange") -> "ValueRange | None":
        """Intersection, or ``None`` when the ranges are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return ValueRange(lo, hi)

    def clamp(self, width: Width) -> "ValueRange":
        """Clamp to the signed range of ``width``.

        Used when an instruction's encoded width bounds its result: if the
        computed interval escapes the width, the result may wrap, so the
        conservative answer is the full range of that width.
        """
        bound = range_for_width(width)
        if bound.contains_range(self):
            return self
        return bound

    # ------------------------------------------------------------------
    # Width queries
    # ------------------------------------------------------------------
    def width(self) -> Width:
        """Narrowest two's-complement width holding every value in the range."""
        return width_for_signed_range(self.lo, self.hi)

    def __str__(self) -> str:
        return f"<{self.lo}, {self.hi}>"


FULL_RANGE = ValueRange(INT64_MIN, INT64_MAX)

_WIDTH_RANGES = {
    Width.BYTE: ValueRange(-(1 << 7), (1 << 7) - 1),
    Width.HALF: ValueRange(-(1 << 15), (1 << 15) - 1),
    Width.WORD: ValueRange(-(1 << 31), (1 << 31) - 1),
    Width.QUAD: FULL_RANGE,
}


def range_for_width(width: Width) -> ValueRange:
    """All signed values representable at ``width``."""
    return _WIDTH_RANGES[width]


def bits_needed_for_mask(mask: int) -> int:
    """Number of low bits selected by a non-negative AND mask.

    ``0xFF`` needs 8 bits, ``0x3F`` needs 6, ``0x1FF`` needs 9.  Used by the
    useful-range rules of §2.2.5: ``AND R1, 0xFF, R2`` means only the low 8
    bits of ``R1`` are useful.
    """
    if mask < 0:
        return 64
    return max(1, mask.bit_length())
