"""Machine configuration (Table 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheConfig", "PredictorConfig", "MachineConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """One cache level.

    Geometry is validated at construction: a size that does not yield at
    least one whole set would otherwise surface as a bare
    ``ZeroDivisionError`` deep inside the first timing walk.
    """

    size_bytes: int
    associativity: int
    line_bytes: int
    hit_cycles: int
    miss_penalty_cycles: int

    def __post_init__(self) -> None:
        if self.associativity < 1 or self.line_bytes < 1:
            raise ValueError(
                f"cache associativity and line size must be >= 1, got "
                f"{self.associativity} ways x {self.line_bytes} B lines"
            )
        if self.size_bytes < self.associativity * self.line_bytes:
            raise ValueError(
                f"cache of {self.size_bytes} B cannot hold one "
                f"{self.associativity}-way set of {self.line_bytes} B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class PredictorConfig:
    """Combined gshare + bimodal predictor (Table 2)."""

    gshare_entries: int = 64 * 1024
    history_bits: int = 16
    bimodal_entries: int = 2 * 1024
    selector_entries: int = 1024

    def __post_init__(self) -> None:
        for field_name in ("gshare_entries", "bimodal_entries", "selector_entries"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.history_bits < 0:
            raise ValueError("history_bits must be >= 0")


@dataclass(frozen=True)
class MachineConfig:
    """Out-of-order machine parameters from Table 2."""

    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    max_in_flight: int = 64
    int_alus: int = 3
    int_muls: int = 1
    fp_alus: int = 3
    fp_muls: int = 1
    physical_registers: int = 96
    lsq_ports: int = 3
    frontend_depth: int = 3
    mispredict_redirect_penalty: int = 2
    memory_first_chunk_cycles: int = 16
    memory_interchunk_cycles: int = 2

    icache: CacheConfig = CacheConfig(
        size_bytes=64 * 1024, associativity=2, line_bytes=32, hit_cycles=1, miss_penalty_cycles=6
    )
    dcache: CacheConfig = CacheConfig(
        size_bytes=64 * 1024, associativity=2, line_bytes=32, hit_cycles=1, miss_penalty_cycles=6
    )
    l2cache: CacheConfig = CacheConfig(
        size_bytes=256 * 1024, associativity=4, line_bytes=64, hit_cycles=6, miss_penalty_cycles=18
    )
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
