"""Machine configuration (Table 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheConfig", "PredictorConfig", "MachineConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int
    hit_cycles: int
    miss_penalty_cycles: int

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class PredictorConfig:
    """Combined gshare + bimodal predictor (Table 2)."""

    gshare_entries: int = 64 * 1024
    history_bits: int = 16
    bimodal_entries: int = 2 * 1024
    selector_entries: int = 1024


@dataclass(frozen=True)
class MachineConfig:
    """Out-of-order machine parameters from Table 2."""

    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    max_in_flight: int = 64
    int_alus: int = 3
    int_muls: int = 1
    fp_alus: int = 3
    fp_muls: int = 1
    physical_registers: int = 96
    lsq_ports: int = 3
    frontend_depth: int = 3
    mispredict_redirect_penalty: int = 2
    memory_first_chunk_cycles: int = 16
    memory_interchunk_cycles: int = 2

    icache: CacheConfig = CacheConfig(
        size_bytes=64 * 1024, associativity=2, line_bytes=32, hit_cycles=1, miss_penalty_cycles=6
    )
    dcache: CacheConfig = CacheConfig(
        size_bytes=64 * 1024, associativity=2, line_bytes=32, hit_cycles=1, miss_penalty_cycles=6
    )
    l2cache: CacheConfig = CacheConfig(
        size_bytes=256 * 1024, associativity=4, line_bytes=64, hit_cycles=6, miss_penalty_cycles=18
    )
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
