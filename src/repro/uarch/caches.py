"""Set-associative cache models with LRU replacement."""

from __future__ import annotations

from .config import CacheConfig

__all__ = ["Cache", "CacheHierarchy"]


class Cache:
    """A single cache level (tag-only model, LRU replacement).

    The compiled timing kernel (:mod:`repro.uarch.tkernel`) inlines this
    exact set/tag/LRU arithmetic on flat tag lists; any change here must
    be mirrored there (the differential suite in
    ``tests/test_uarch_timing.py`` catches drift).
    """

    __slots__ = ("config", "name", "_sets", "_line_bytes", "_num_sets", "accesses", "misses")

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        # Geometry snapshotted once: ``num_sets`` is a derived property
        # whose division would otherwise run twice per access.
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access the line containing ``address``; returns True on a hit."""
        self.accesses += 1
        line = address // self._line_bytes
        index = line % self._num_sets
        tag = line // self._num_sets
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return False

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class CacheHierarchy:
    """L1 (instruction or data) backed by a shared L2 and main memory."""

    def __init__(self, l1: CacheConfig, l2: Cache, memory_latency: int) -> None:
        self.l1 = Cache(l1, name="l1")
        self.l2 = l2
        self.memory_latency = memory_latency

    def access(self, address: int) -> int:
        """Access ``address``; returns the latency in cycles."""
        if self.l1.access(address):
            return self.l1.config.hit_cycles
        latency = self.l1.config.hit_cycles + self.l1.config.miss_penalty_cycles
        if self.l2.access(address):
            return latency
        return latency + self.l2.config.miss_penalty_cycles + self.memory_latency
