"""Trace-driven out-of-order timing model.

The model walks the dynamic trace produced by the functional simulator and
assigns each instruction fetch, dispatch, issue, completion and commit
cycles subject to the Table 2 machine resources:

* fetch/decode/issue/retire width of 4,
* a 64-entry instruction window,
* 3 integer ALUs + 1 integer multiplier (FP units exist but integer
  workloads never use them),
* L1 instruction/data caches backed by a unified L2,
* a combined gshare/bimodal branch predictor whose mispredictions redirect
  fetch after the branch resolves.

It is an analytical scoreboard rather than a cycle-stepped simulator —
orders of magnitude faster in Python while preserving the first-order
behaviour (dependence chains, window fill, structural hazards, memory
latency, branch redirects) that the paper's execution-time results rest on.

The model comes in **two kernel tiers** (see ``docs/timing.md``):

* ``reference`` — the columnar walk in :meth:`OutOfOrderModel.run_reference`:
  one pass over the trace's packed meta column zipped with its address
  column.  The per-record flag byte replaces the ``None`` checks of the
  old record walk, static facts come from the dense uid-indexed entry
  list, and effective addresses are consumed from the sparse memory
  column with a running cursor.  The arithmetic is identical to the
  record walk, so cycle counts are bit-exact (the differential harness
  in ``tests/test_trace_columnar.py`` asserts exactly that).
* ``compiled`` (the default) — the specialized kernel in
  :mod:`repro.uarch.tkernel`: the same scoreboard arithmetic over a
  packed per-uid static table, ring-buffer slot allocators and inlined
  cache/predictor state.  Bit-exact against the reference tier on every
  :class:`TimingResult` field (``tests/test_uarch_timing.py``), ~3-4x
  faster (``benchmarks/bench_timing.py`` enforces ≥2x in CI).

Select a tier per model (``OutOfOrderModel(kernel=...)``), per run
(``run(kernel=...)``) or process-wide with ``REPRO_TIMING_KERNEL``
(``compiled`` — the default — or ``reference``/``slow``/``off``),
mirroring the functional simulator's ``REPRO_SIM_DISPATCH`` tiers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..sim import Trace
from ..sim.trace import FLAG_MEM, FLAG_TAKEN, FLAG_TAKEN_TRUE
from .branch_predictor import CombinedPredictor
from .caches import Cache, CacheHierarchy
from .config import MachineConfig

__all__ = ["TIMING_KERNELS", "TimingResult", "OutOfOrderModel"]

_UINT64 = (1 << 64) - 1

#: The two timing-kernel tiers; both produce bit-identical results.
TIMING_KERNELS = ("reference", "compiled")


def _default_kernel() -> str:
    """Kernel tier selected by ``REPRO_TIMING_KERNEL`` (default: compiled).

    The opt-out vocabulary mirrors ``REPRO_SIM_DISPATCH``'s reference
    spellings, so either variable understands the same words; anything
    else selects the compiled kernel.
    """
    value = os.environ.get("REPRO_TIMING_KERNEL", "").lower()
    if value in ("reference", "ref", "slow", "0", "off", "false", "disabled", "none"):
        return "reference"
    return "compiled"


class _Slots:
    """Bounded number of events per cycle (issue ports, FUs, retire slots).

    ``allocate`` probes upward from ``earliest`` for a cycle with spare
    width.  The per-cycle usage dict would otherwise grow one entry per
    distinct cycle for the whole trace — unbounded on long traces — so
    the walk periodically calls :meth:`release_below` with a monotone
    lower bound on all future probes, letting exhausted cycles be
    forgotten without changing any allocation (the regression probe in
    ``tests/test_uarch_timing.py`` asserts both properties).
    """

    __slots__ = ("width", "_used")

    #: Entry count above which ``release_below`` actually scans; keeps
    #: the scan amortized against the walk's periodic call cadence.
    PRUNE_THRESHOLD = 4096

    def __init__(self, width: int) -> None:
        self.width = width
        self._used: dict[int, int] = {}

    def allocate(self, earliest: int) -> int:
        cycle = earliest
        used = self._used
        while used.get(cycle, 0) >= self.width:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle

    def release_below(self, floor: int) -> None:
        """Forget cycles below ``floor`` (a bound no future probe goes under)."""
        used = self._used
        if len(used) > self.PRUNE_THRESHOLD:
            for cycle in [cycle for cycle in used if cycle < floor]:
                del used[cycle]


@dataclass
class TimingResult:
    """Cycle counts and microarchitectural event statistics."""

    cycles: int
    instructions: int
    branch_lookups: int
    branch_mispredictions: int
    icache_accesses: int
    icache_misses: int
    dcache_accesses: int
    dcache_misses: int
    l2_accesses: int
    l2_misses: int
    loads: int
    stores: int
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OutOfOrderModel:
    """Runs the timing model over one trace.

    ``kernel`` pins the kernel tier for this model (``"reference"`` or
    ``"compiled"``); when ``None`` each :meth:`run` resolves the tier
    from ``REPRO_TIMING_KERNEL`` (compiled by default).  The tiers are
    bit-identical, so the choice never affects results — only speed.
    """

    def __init__(
        self, config: MachineConfig | None = None, kernel: Optional[str] = None
    ) -> None:
        self.config = config or MachineConfig()
        if kernel is not None and kernel not in TIMING_KERNELS:
            raise ValueError(
                f"unknown timing kernel {kernel!r}; expected one of {', '.join(TIMING_KERNELS)}"
            )
        self.kernel = kernel

    def run(self, trace: Trace, kernel: Optional[str] = None) -> TimingResult:
        """Time ``trace`` under the resolved kernel tier."""
        tier = kernel if kernel is not None else self.kernel
        if tier is None:
            tier = _default_kernel()
        elif tier not in TIMING_KERNELS:
            raise ValueError(
                f"unknown timing kernel {tier!r}; expected one of {', '.join(TIMING_KERNELS)}"
            )
        if tier == "compiled":
            from .tkernel import run_compiled

            return run_compiled(trace, self.config)
        return self.run_reference(trace)

    def run_reference(self, trace: Trace) -> TimingResult:
        """The reference scoreboard walk — the compiled kernel's oracle."""
        config = self.config
        static = trace.static
        entries = static.entries
        uid_base = static.uid_base
        # The hot loop indexes the dense entry list directly; validate the
        # trace's uid set once up front so a record without a static entry
        # raises KeyError (as the old dict lookup did) instead of silently
        # wrap-indexing to an unrelated entry or hitting a None hole.
        for uid in trace.uid_counts():
            if static.get(uid) is None:
                raise KeyError(uid)
        mem_column = trace.mem_addresses
        mem_cursor = 0

        l2 = Cache(config.l2cache, name="l2")
        memory_latency = config.memory_first_chunk_cycles + 3 * config.memory_interchunk_cycles
        icache = CacheHierarchy(config.icache, l2, memory_latency)
        dcache = CacheHierarchy(config.dcache, l2, memory_latency)
        predictor = CombinedPredictor(config.predictor)

        issue_slots = _Slots(config.issue_width)
        retire_slots = _Slots(config.retire_width)
        alu_slots = _Slots(config.int_alus)
        mul_slots = _Slots(config.int_muls)
        lsq_slots = _Slots(config.lsq_ports)

        reg_ready: dict[int, int] = {}
        window_commits: list[int] = [0] * config.max_in_flight
        window_index = 0

        fetch_cycle = 0
        fetched_in_cycle = 0
        current_fetch_line = -1
        redirect_cycle = 0
        last_commit = 0
        loads = stores = 0

        line_bytes = config.icache.line_bytes
        frontend = config.frontend_depth

        # Issue-family probes never go below fetch_cycle (monotone) and
        # retire probes never below last_commit, so exhausted cycles can
        # be released periodically — bounding the per-cycle dicts on
        # long traces without touching any allocation.
        prune_countdown = prune_interval = _Slots.PRUNE_THRESHOLD

        for meta, address in zip(trace.metas, trace.addresses()):
            prune_countdown -= 1
            if not prune_countdown:
                prune_countdown = prune_interval
                for slots in (issue_slots, alu_slots, mul_slots, lsq_slots):
                    slots.release_below(fetch_cycle)
                retire_slots.release_below(last_commit)
            flags = meta & 0xFF
            entry = entries[(meta >> 8) - uid_base]
            if flags & FLAG_MEM:
                mem_address = mem_column[mem_cursor] & _UINT64
                mem_cursor += 1
            else:
                mem_address = None

            # ----------------------------------------------------- fetch
            earliest_fetch = max(fetch_cycle, redirect_cycle)
            if earliest_fetch > fetch_cycle:
                fetch_cycle = earliest_fetch
                fetched_in_cycle = 0
            line = address // line_bytes
            if line != current_fetch_line:
                current_fetch_line = line
                latency = icache.access(address)
                if latency > config.icache.hit_cycles:
                    fetch_cycle += latency - config.icache.hit_cycles
                    fetched_in_cycle = 0
            if fetched_in_cycle >= config.fetch_width:
                fetch_cycle += 1
                fetched_in_cycle = 0
            fetch = fetch_cycle
            fetched_in_cycle += 1

            # -------------------------------------------------- dispatch
            dispatch = fetch + frontend
            window_slot_free = window_commits[window_index]
            if window_slot_free > dispatch:
                dispatch = window_slot_free

            # ----------------------------------------------------- issue
            ready = dispatch
            for reg_index in entry.src_regs:
                producer_complete = reg_ready.get(reg_index, 0)
                if producer_complete > ready:
                    ready = producer_complete
            issue = issue_slots.allocate(ready)
            if entry.functional_unit == "imul":
                issue = mul_slots.allocate(issue)
            elif entry.functional_unit == "mem":
                issue = lsq_slots.allocate(issue)
            else:
                issue = alu_slots.allocate(issue)

            # -------------------------------------------------- execute
            latency = entry.latency
            if entry.is_load or entry.is_store:
                if entry.is_load:
                    loads += 1
                else:
                    stores += 1
                if mem_address is not None:
                    latency = dcache.access(mem_address)
                    if entry.is_store:
                        latency = 1  # stores retire from the store queue
            complete = issue + latency

            # --------------------------------------------------- commit
            commit = retire_slots.allocate(max(complete, last_commit))
            last_commit = commit
            window_commits[window_index] = commit
            window_index = (window_index + 1) % config.max_in_flight

            # Producer availability for consumers.
            if entry.dest_reg is not None and entry.dest_reg != 31:
                reg_ready[entry.dest_reg] = complete

            # -------------------------------------------------- branches
            if entry.is_branch and flags & FLAG_TAKEN:
                if entry.is_conditional:
                    correct = predictor.update(address, bool(flags & FLAG_TAKEN_TRUE))
                    if not correct:
                        redirect_cycle = complete + config.mispredict_redirect_penalty
                        current_fetch_line = -1
            elif (entry.is_call or entry.is_return) and flags & FLAG_TAKEN_TRUE:
                # Calls/returns redirect the front end for one cycle.
                redirect_cycle = max(redirect_cycle, fetch + 1)
                current_fetch_line = -1

        cycles = max(last_commit, fetch_cycle) + 1
        return TimingResult(
            cycles=cycles,
            instructions=len(trace),
            branch_lookups=predictor.lookups,
            branch_mispredictions=predictor.mispredictions,
            icache_accesses=icache.l1.accesses,
            icache_misses=icache.l1.misses,
            dcache_accesses=dcache.l1.accesses,
            dcache_misses=dcache.l1.misses,
            l2_accesses=l2.accesses,
            l2_misses=l2.misses,
            loads=loads,
            stores=stores,
        )
