"""Combined branch predictor (gshare + bimodal with a selector), per Table 2."""

from __future__ import annotations

from .config import PredictorConfig

__all__ = ["CombinedPredictor"]


class _CounterTable:
    """A table of 2-bit saturating counters.

    The compiled timing kernel (:mod:`repro.uarch.tkernel`) inlines
    these flat tables and their saturation arithmetic; any change here
    must be mirrored there (``tests/test_uarch_timing.py`` catches
    drift bit-for-bit).
    """

    __slots__ = ("_mask", "_counters")

    def __init__(self, entries: int, initial: int = 1) -> None:
        self._mask = entries - 1
        self._counters = [initial] * entries

    def index(self, key: int) -> int:
        return key & self._mask

    def predict(self, key: int) -> bool:
        return self._counters[self.index(key)] >= 2

    def update(self, key: int, outcome: bool) -> None:
        index = self.index(key)
        counter = self._counters[index]
        if outcome:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)


class CombinedPredictor:
    """Selector-based combination of a gshare and a bimodal predictor."""

    __slots__ = (
        "config",
        "_gshare",
        "_bimodal",
        "_selector",
        "_history",
        "_history_mask",
        "lookups",
        "mispredictions",
    )

    def __init__(self, config: PredictorConfig | None = None) -> None:
        config = config or PredictorConfig()
        self.config = config
        self._gshare = _CounterTable(config.gshare_entries)
        self._bimodal = _CounterTable(config.bimodal_entries)
        self._selector = _CounterTable(config.selector_entries, initial=2)
        self._history = 0
        self._history_mask = (1 << config.history_bits) - 1
        self.lookups = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    def _gshare_key(self, pc: int) -> int:
        return (pc >> 2) ^ self._history

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        use_gshare = self._selector.predict(pc >> 2)
        if use_gshare:
            return self._gshare.predict(self._gshare_key(pc))
        return self._bimodal.predict(pc >> 2)

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True when the prediction was correct."""
        self.lookups += 1
        gshare_prediction = self._gshare.predict(self._gshare_key(pc))
        bimodal_prediction = self._bimodal.predict(pc >> 2)
        use_gshare = self._selector.predict(pc >> 2)
        prediction = gshare_prediction if use_gshare else bimodal_prediction

        if gshare_prediction != bimodal_prediction:
            self._selector.update(pc >> 2, gshare_prediction == taken)
        self._gshare.update(self._gshare_key(pc), taken)
        self._bimodal.update(pc >> 2, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

        correct = prediction == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.mispredictions / self.lookups
