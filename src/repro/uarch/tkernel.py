"""Compiled out-of-order timing kernel.

Runs the *same scoreboard arithmetic* as the reference walk in
:meth:`repro.uarch.ooo.OutOfOrderModel.run_reference`, but as
**generated, per-configuration Python source** (the same technique the
simulator's block compiler uses) driven off precomputed packed data:

* **Specialized walk source** (:data:`KERNEL_TEMPLATE`): every machine
  parameter is baked in as a literal, power-of-two cache/line/window
  arithmetic compiles to shifts and masks, and only the configured
  cache-associativity variant is emitted.  Compiled once per
  (config, address-mode) pair and cached for the process.

* **Packed static table** (:class:`StaticTable`): the per-uid facts the
  walk needs (latency, functional-unit class, class bits, destination
  register, source registers) are baked once per :class:`StaticInfo`
  into dense ``array('q')`` columns — the source registers as seven
  8-bit lanes plus a count byte, everything else fused into one *hot
  word* per uid — then flattened into one tuple per uid, so the loop
  makes a single list indexing per record for all static facts instead
  of a dataclass attribute walk.  Simulator traces derive instruction
  addresses from the uid, so the *derived* address mode also bakes the
  fetch-line number and branch pc per uid and iterates the meta column
  alone; hand-built traces take the explicit two-column variant.

* **Ring-buffer slot allocators**: the reference model's ``_Slots``
  (a per-cycle usage dict) becomes a pair of flat lists per allocator —
  ``cycle_at[slot]``/``count[slot]`` with ``slot = cycle & mask`` — so
  an ``allocate`` is list indexing instead of dict probing, and the
  occupancy state is bounded by the ring capacity instead of growing
  with the cycle count.  Equivalence is unconditional: a slot write
  that would clobber a *live* tenant (tenant cycle ≥ the monotone probe
  floor ``fetch + frontend_depth``) grows the ring first
  (:func:`_grow_ring`); stale tenants are below every future probe, so
  overwriting them is exactly the dict allocator's garbage.  A
  known-full interval memo collapses the re-walk of saturated cycles
  (see :func:`_ring_probe`), and the retire allocator's probes are
  monotone (``max(complete, last_commit)``), so it collapses further,
  to a frontier ``(cycle, used)`` scalar pair.

* **Inlined caches and predictor**: L1 set/tag math runs on flat
  MRU/LRU tag lists when the cache is 2-way (the Table 2 shape), with a
  generic per-set list fallback for other associativities; the shared
  L2 keeps the reference's per-set LRU lists (it is only touched on L1
  misses).  The gshare/bimodal/selector tables are flat lists of 2-bit
  counters updated inline with the exact saturation arithmetic of
  :class:`~repro.uarch.branch_predictor.CombinedPredictor`.

Every counter (accesses, misses, lookups, mispredictions, loads,
stores) and every cycle is bit-exact against the reference walk — the
differential harness in ``tests/test_uarch_timing.py`` asserts
field-for-field :class:`TimingResult` equality on hypothesis-generated
programs and on every suite workload.  Select the kernel with
``REPRO_TIMING_KERNEL=reference|compiled`` (compiled is the default);
see ``docs/timing.md``.
"""

from __future__ import annotations

import weakref
from array import array
from dataclasses import dataclass

from ..sim import Trace
from ..sim.trace import StaticInfo
from .config import MachineConfig

__all__ = [
    "StaticTable",
    "bake_static_table",
    "run_compiled",
    "run_compiled_many",
    "MULTI_KERNEL_MAX_LANES",
]

_UINT64 = (1 << 64) - 1

#: Hot-word layout (:attr:`StaticTable.hot_word`): one int per uid
#: fusing every scalar static fact the walk consumes.
HOT_LATENCY_MASK = 0xFF  # bits 0-7: execution latency
HOT_IMUL = 1 << 8  # functional unit: integer multiplier
HOT_MEM = 1 << 9  # functional unit: load/store queue
HOT_LOAD = 1 << 10
HOT_STORE = 1 << 11
HOT_BRANCH = 1 << 12
HOT_CONDITIONAL = 1 << 13
HOT_CALL_RETURN = 1 << 14
HOT_DEST_SHIFT = 16  # bits 16+: dest_reg + 1 (0 = no producer-visible dest)

#: Test masks the kernel template bakes in as literals (768, 3072, 20480).
HOT_FU = HOT_IMUL | HOT_MEM
HOT_LS = HOT_LOAD | HOT_STORE
HOT_CTRL = HOT_BRANCH | HOT_CALL_RETURN

#: log2 of the initial ring capacity of the issue-family slot
#: allocators.  16384 cycles is far beyond any reachable issue-to-fetch
#: span of the Table 2 machine (the 64-entry window bounds it to a few
#: thousand cycles even on pathological miss chains); the rings grow on
#: collision regardless, so this is a sizing hint, not a correctness
#: bound.  Tests shrink it to force the growth path.
_RING_BITS = 14


@dataclass(frozen=True)
class StaticTable:
    """Per-uid static attributes packed into dense ``array('q')`` columns.

    Indexed by ``uid - uid_base`` exactly like ``StaticInfo.entries``;
    ``None`` holes bake to neutral values (they are unreachable — the
    kernel validates the trace's uid set up front, as the reference
    walk does).  ``latency``/``fu_class``/``class_bits``/``dest_reg``
    are the readable single-fact columns; ``hot_word`` fuses them per
    the ``HOT_*`` layout and is what the walk actually indexes.
    """

    uid_base: int
    latency: array
    fu_class: array
    class_bits: array
    dest_reg: array  # -1 when the entry has no producer-visible dest
    src_packed: array  # count << 56 | reg[i] << (8 * i)
    hot_word: array
    num_regs: int
    #: Mutation stamp of the StaticInfo the table was baked from.
    stamp: tuple

    def src_tuples(self) -> list[tuple[int, ...]]:
        """Decode the packed source-register column to per-uid tuples."""
        decoded: list[tuple[int, ...]] = []
        for word in self.src_packed:
            count = word >> 56
            decoded.append(tuple((word >> (8 * i)) & 0xFF for i in range(count)))
        return decoded


#: Class-bit layout of :attr:`StaticTable.class_bits` (the readable
#: column; the hot word carries the same bits shifted to ``HOT_*``).
CLS_LOAD = 1
CLS_STORE = 2
CLS_BRANCH = 4
CLS_CONDITIONAL = 8
CLS_CALL_RETURN = 16

#: Functional-unit classes (:attr:`StaticTable.fu_class`).
FU_ALU = 0
FU_IMUL = 1
FU_MEM = 2


def _static_stamp(static: StaticInfo) -> tuple:
    # version catches in-place entry replacement, which leaves the
    # shape-based components (base, length, count) unchanged.
    return (static.version, static.uid_base, len(static.entries), len(static))


def bake_static_table(static: StaticInfo) -> StaticTable:
    """Bake ``static`` into packed columns (pure function of its entries)."""
    latency = array("q")
    fu_class = array("q")
    class_bits = array("q")
    dest_reg = array("q")
    src_packed = array("q")
    hot_word = array("q")
    num_regs = 32
    for entry in static.entries:
        if entry is None:
            latency.append(0)
            fu_class.append(FU_ALU)
            class_bits.append(0)
            dest_reg.append(-1)
            src_packed.append(0)
            hot_word.append(0)
            continue
        if not 0 <= entry.latency <= HOT_LATENCY_MASK:
            raise ValueError(
                f"uid {entry.uid}: latency {entry.latency} does not fit the hot word"
            )
        latency.append(entry.latency)
        hot = entry.latency
        if entry.functional_unit == "imul":
            fu_class.append(FU_IMUL)
            hot |= HOT_IMUL
        elif entry.functional_unit == "mem":
            fu_class.append(FU_MEM)
            hot |= HOT_MEM
        else:
            fu_class.append(FU_ALU)
        cls = (
            (CLS_LOAD if entry.is_load else 0)
            | (CLS_STORE if entry.is_store else 0)
            | (CLS_BRANCH if entry.is_branch else 0)
            | (CLS_CONDITIONAL if entry.is_conditional else 0)
            | (CLS_CALL_RETURN if entry.is_call or entry.is_return else 0)
        )
        class_bits.append(cls)
        hot |= cls << 10  # CLS_* bits land on HOT_LOAD..HOT_CALL_RETURN
        dest = entry.dest_reg
        if dest is None or dest == 31:
            dest_reg.append(-1)
        else:
            dest_reg.append(dest)
            hot |= (dest + 1) << HOT_DEST_SHIFT
            if dest >= num_regs:
                num_regs = dest + 1
        srcs = entry.src_regs
        if len(srcs) > 7:
            raise ValueError(
                f"uid {entry.uid}: {len(srcs)} source registers exceed the packed lanes"
            )
        word = len(srcs) << 56
        for lane, reg in enumerate(srcs):
            if not 0 <= reg <= 0xFF:
                raise ValueError(f"uid {entry.uid}: register index {reg} does not pack")
            word |= reg << (8 * lane)
            if reg >= num_regs:
                num_regs = reg + 1
        src_packed.append(word)
        hot_word.append(hot)
    return StaticTable(
        uid_base=static.uid_base,
        latency=latency,
        fu_class=fu_class,
        class_bits=class_bits,
        dest_reg=dest_reg,
        src_packed=src_packed,
        hot_word=hot_word,
        num_regs=num_regs,
        stamp=_static_stamp(static),
    )


#: StaticInfo → baked table; weak keys so tables die with their program.
_TABLE_CACHE: "weakref.WeakKeyDictionary[StaticInfo, StaticTable]" = (
    weakref.WeakKeyDictionary()
)


def _table_for(static: StaticInfo) -> StaticTable:
    table = _TABLE_CACHE.get(static)
    if table is None or table.stamp != _static_stamp(static):
        table = bake_static_table(static)
        _TABLE_CACHE[static] = table
    return table


def _grow_ring(
    cycle_at: list, count: list, floor: int, span: int
) -> tuple[list, list, int]:
    """Grow a ring until ``span`` fits, rehashing live entries (≥ ``floor``).

    Entries below the monotone probe floor can never be probed again, so
    dropping them is exactly what the dict allocator's garbage is.
    """
    capacity = 2 * len(cycle_at)
    while capacity <= span:
        capacity *= 2
    mask = capacity - 1
    new_cycle_at = [-1] * capacity
    new_count = [0] * capacity
    for cycle, used in zip(cycle_at, count):
        if cycle >= floor:
            slot = cycle & mask
            new_cycle_at[slot] = cycle
            new_count[slot] = used
    return new_cycle_at, new_count, mask


#: Source template of the specialized walk.  ``_walk_source`` formats
#: the config into it: scalar parameters become literals, pow2
#: divisions become shifts/masks, and only the configured cache
#: associativity variant is emitted.  The scoreboard arithmetic is the
#: reference walk's, line for line — see ``OutOfOrderModel.run_reference``.
KERNEL_TEMPLATE = """\
def _timing_walk(rows, addresses, mem_column, static_of, base, num_regs):
    {I_SETUP}
    {D_SETUP}
    l2_ways = [[] for _ in range({L2_SETS})]
    i_accesses = i_misses = d_accesses = d_misses = l2_accesses = l2_misses = 0

    gshare = [1] * {G_ENTRIES}
    bimodal = [1] * {B_ENTRIES}
    selector = [2] * {S_ENTRIES}
    history = 0
    lookups = mispredictions = 0

    iss_cycle_at, iss_count, iss_mask = (
        [-1] * {RING_CAPACITY}, [0] * {RING_CAPACITY}, {RING_CAPACITY} - 1
    )
    alu_cycle_at, alu_count, alu_mask = (
        [-1] * {RING_CAPACITY}, [0] * {RING_CAPACITY}, {RING_CAPACITY} - 1
    )
    mul_cycle_at, mul_count, mul_mask = (
        [-1] * {RING_CAPACITY}, [0] * {RING_CAPACITY}, {RING_CAPACITY} - 1
    )
    lsq_cycle_at, lsq_count, lsq_mask = (
        [-1] * {RING_CAPACITY}, [0] * {RING_CAPACITY}, {RING_CAPACITY} - 1
    )
    iss_skip_from = iss_skip_to = -1
    alu_skip_from = alu_skip_to = -1
    mul_skip_from = mul_skip_to = -1
    lsq_skip_from = lsq_skip_to = -1
    commit_frontier = -1
    commit_used = 0

    reg_ready = [0] * num_regs
    window_commits = [0] * {WINDOW}
    window_index = 0
    mem_cursor = 0
    fetch_cycle = 0
    fetched_in_cycle = 0
    current_fetch_line = -1
    redirect_cycle = 0
    floor = {FRONTEND}  # = fetch_cycle + frontend depth, kept in step
    loads = stores = 0

    {LOOP_HEADER}
        {EXTRACT}

        # ----------------------------------------------------- fetch
        if redirect_cycle:
            # The reference keeps redirect_cycle forever and re-maxes
            # it against fetch_cycle every record; consuming (zeroing)
            # it at the next fetch is equivalent: once applied,
            # fetch_cycle is at least the redirect, so the reference's
            # max() never fires again for it.
            if redirect_cycle > fetch_cycle:
                fetch_cycle = redirect_cycle
                fetched_in_cycle = 0
                floor = fetch_cycle + {FRONTEND}
            redirect_cycle = 0
        {LINE_STMT}if line != current_fetch_line:
            current_fetch_line = line
{I_ACCESS}
            if latency < 0:
{I_L2}
            if latency > {I_HIT}:
                fetch_cycle += latency - {I_HIT}
                fetched_in_cycle = 1
                floor = fetch_cycle + {FRONTEND}
            elif fetched_in_cycle >= {FETCH_WIDTH}:
                fetch_cycle += 1
                fetched_in_cycle = 1
                floor += 1
            else:
                fetched_in_cycle += 1
        elif fetched_in_cycle >= {FETCH_WIDTH}:
            fetch_cycle += 1
            fetched_in_cycle = 1
            floor += 1
        else:
            fetched_in_cycle += 1

        # ---------------------------------------- dispatch and issue
        ready = window_commits[window_index]
        if ready < floor:
            ready = floor
        for reg in srcs:
            producer_complete = reg_ready[reg]
            if producer_complete > ready:
                ready = producer_complete
        cycle = ready
{ISSUE_PROBE}
        if hot & 768:  # off the ALU pool: mul or load/store queue
            if hot & 512:
{LSQ_PROBE}
            else:
{MUL_PROBE}
        else:
{ALU_PROBE}

        # -------------------------------------------------- execute
        if hot & 3072:  # load or store
            if hot & 1024:
                loads += 1
            else:
                stores += 1
            if meta & 2:  # FLAG_MEM: the record carries an address
                mem_address = mem_column[mem_cursor] & {UINT64}
                mem_cursor += 1
{D_ACCESS}
                if latency < 0:
{D_L2}
                if hot & 2048:  # stores retire from the store queue
                    latency = 1
            else:
                latency = hot & 255
        else:
            latency = hot & 255
            if meta & 2:
                # Non-load/store record carrying a memory address:
                # consume it so the sparse-column cursor stays aligned.
                mem_cursor += 1
        complete = cycle + latency

        # --------------------------------------------------- commit
        # retire_slots.allocate(max(complete, last_commit)), where
        # last_commit == commit_frontier: retire probes are monotone,
        # so the allocator is the frontier (cycle, used) pair.
        if complete > commit_frontier:
            commit_frontier = complete
            commit_used = 1
        elif commit_used >= {RETIRE_WIDTH}:
            commit_frontier += 1
            commit_used = 1
        else:
            commit_used += 1
        window_commits[window_index] = commit_frontier
        {WINDOW_WRAP}

        dest = hot >> 16  # dest_reg + 1; 0 when absent
        if dest:
            reg_ready[dest - 1] = complete

        # -------------------------------------------------- branches
        if hot & 20480:  # branch or call/return
            if hot & 4096 and meta & 4:  # branch with a taken flag
                if hot & 8192:  # conditional: predictor.update inline
                    taken = meta & 8
                    {PC_STMT}
                    gkey = (pc ^ history) & {G_MASK}
                    bkey = pc & {B_MASK}
                    skey = pc & {S_MASK}
                    gshare_prediction = gshare[gkey] >= 2
                    bimodal_prediction = bimodal[bkey] >= 2
                    if selector[skey] >= 2:
                        prediction = gshare_prediction
                    else:
                        prediction = bimodal_prediction
                    lookups += 1
                    if taken:
                        if gshare_prediction != bimodal_prediction:
                            counter = selector[skey]
                            if gshare_prediction:
                                if counter < 3:
                                    selector[skey] = counter + 1
                            elif counter > 0:
                                selector[skey] = counter - 1
                        counter = gshare[gkey]
                        if counter < 3:
                            gshare[gkey] = counter + 1
                        counter = bimodal[bkey]
                        if counter < 3:
                            bimodal[bkey] = counter + 1
                        history = ((history << 1) | 1) & {HISTORY_MASK}
                        if not prediction:
                            mispredictions += 1
                            redirect_cycle = complete + {MISPREDICT_PENALTY}
                            current_fetch_line = -1
                    else:
                        if gshare_prediction != bimodal_prediction:
                            counter = selector[skey]
                            if gshare_prediction:
                                if counter > 0:
                                    selector[skey] = counter - 1
                            elif counter < 3:
                                selector[skey] = counter + 1
                        counter = gshare[gkey]
                        if counter > 0:
                            gshare[gkey] = counter - 1
                        counter = bimodal[bkey]
                        if counter > 0:
                            bimodal[bkey] = counter - 1
                        history = (history << 1) & {HISTORY_MASK}
                        if prediction:
                            mispredictions += 1
                            redirect_cycle = complete + {MISPREDICT_PENALTY}
                            current_fetch_line = -1
            elif hot & 16384 and meta & 8:  # taken call/return redirect
                # A pending redirect was either just applied (making it
                # at most fetch_cycle) or never set, so the reference's
                # max(redirect, fetch + 1) is always fetch_cycle + 1.
                redirect_cycle = fetch_cycle + 1
                current_fetch_line = -1

    last_commit = commit_frontier if commit_frontier >= 0 else 0
    cycles = (last_commit if last_commit > fetch_cycle else fetch_cycle) + 1
    return (
        cycles,
        lookups,
        mispredictions,
        i_accesses,
        i_misses,
        d_accesses,
        d_misses,
        l2_accesses,
        l2_misses,
        loads,
        stores,
    )
"""


def _div(value_expr: str, divisor: int) -> str:
    """Source expression dividing ``value_expr`` by ``divisor`` (shift if pow2)."""
    if divisor & (divisor - 1) == 0:
        return f"({value_expr} >> {divisor.bit_length() - 1})"
    return f"({value_expr} // {divisor})"


def _mod(value_expr: str, divisor: int) -> str:
    """Source expression for ``value_expr % divisor`` (mask if pow2)."""
    if divisor & (divisor - 1) == 0:
        return f"({value_expr} & {divisor - 1})"
    return f"({value_expr} % {divisor})"


def _l1_access(prefix: str, cfg, line_expr: str, indent: str) -> str:
    """Source for one inlined L1 access: sets ``latency`` (-1 = L1 miss).

    ``line_expr`` is the cache-line number (the icache reuses the fetch
    line — same geometry; the dcache derives it from the effective
    address).  Two-way caches (the Table 2 shape) run on the flat
    MRU/LRU tag lists; other associativities use the reference's
    per-set LRU lists.
    """
    p = prefix
    lines = [
        f"{p}_accesses += 1",
        f"{p}line = " + line_expr,
        f"{p}set_ = " + _mod(f"{p}line", cfg.num_sets),
        f"tag = " + _div(f"{p}line", cfg.num_sets),
    ]
    if cfg.associativity == 2:
        lines += [
            f"if tag == {p}_mru[{p}set_]:",
            f"    latency = {cfg.hit_cycles}",
            f"elif tag == {p}_lru[{p}set_]:",
            f"    {p}_lru[{p}set_] = {p}_mru[{p}set_]",
            f"    {p}_mru[{p}set_] = tag",
            f"    latency = {cfg.hit_cycles}",
            "else:",
            f"    {p}_misses += 1",
            f"    {p}_lru[{p}set_] = {p}_mru[{p}set_]",
            f"    {p}_mru[{p}set_] = tag",
            "    latency = -1",
        ]
    else:
        lines += [
            f"ways = {p}_ways[{p}set_]",
            "if tag in ways:",
            "    ways.remove(tag)",
            "    ways.append(tag)",
            f"    latency = {cfg.hit_cycles}",
            "else:",
            f"    {p}_misses += 1",
            "    ways.append(tag)",
            f"    if len(ways) > {cfg.associativity}:",
            "        ways.pop(0)",
            "    latency = -1",
        ]
    return "\n".join(indent + line for line in lines)


def _l2_access(
    l2cfg, line_expr: str, hit_latency: int, miss_latency: int, indent: str
) -> str:
    """Source for one shared-L2 access (reference per-set LRU lists)."""
    lines = [
        "l2_accesses += 1",
        "l2line = " + line_expr,
        "ways = l2_ways[" + _mod("l2line", l2cfg.num_sets) + "]",
        "l2tag = " + _div("l2line", l2cfg.num_sets),
        "if l2tag in ways:",
        "    ways.remove(l2tag)",
        "    ways.append(l2tag)",
        f"    latency = {hit_latency}",
        "else:",
        "    l2_misses += 1",
        "    ways.append(l2tag)",
        f"    if len(ways) > {l2cfg.associativity}:",
        "        ways.pop(0)",
        f"    latency = {miss_latency}",
    ]
    return "\n".join(indent + line for line in lines)


def _ring_probe(
    name: str,
    width: int,
    indent: str,
    cycle_var: str = "cycle",
    floor_var: str = "floor",
) -> str:
    """Source for one inlined ring-allocator probe from ``cycle_var``.

    A slot write may only clobber a stale tenant (``old < floor``:
    below every future probe); a live collision grows the ring and
    re-probes, so dict-allocator equivalence is unconditional.

    Saturated-prefix memoization: per-cycle usage only ever grows, so a
    cycle once seen full stays full.  Each allocator remembers one
    known-full interval ``[skip_from, skip_to)``; hitting a full cycle
    inside it jumps straight past the interval instead of re-walking it
    (the dominant cost at IPC near the issue width — several full
    cycles re-probed per record).  The memo is consulted and maintained
    exclusively on the full-cycle path, so unconstrained allocations
    pay nothing.

    ``cycle_var``/``floor_var`` let the multi-config kernel probe a
    lane-suffixed cycle against that lane's own monotone floor; the
    single-config template uses the defaults.
    """
    n = name
    c = cycle_var
    f = floor_var
    lines = [
        "while True:",
        f"    slot = {c} & {n}_mask",
        f"    old = {n}_cycle_at[slot]",
        f"    if old == {c}:",
        f"        used = {n}_count[slot]",
        f"        if used < {width}:",
        f"            {n}_count[slot] = used + 1",
        "            break",
        f"        if {n}_skip_from <= {c} < {n}_skip_to:",
        f"            {c} = {n}_skip_to",
        f"        elif {c} == {n}_skip_to:",
        f"            {n}_skip_to = {c} = {c} + 1",
        "        else:",
        f"            {n}_skip_from = {c}",
        f"            {n}_skip_to = {c} = {c} + 1",
        f"    elif old < {f}:",
        f"        {n}_cycle_at[slot] = {c}",
        f"        {n}_count[slot] = 1",
        "        break",
        "    else:",
        f"        {n}_cycle_at, {n}_count, {n}_mask = _grow_ring(",
        f"            {n}_cycle_at, {n}_count, {f}, {c} - {f}",
        "        )",
    ]
    return "\n".join(indent + line for line in lines)


def _fu_probe(
    name: str,
    width: int,
    issue_width: int,
    indent: str,
    cycle_var: str = "cycle",
    floor_var: str = "floor",
) -> str | None:
    """A functional-unit probe, or ``None`` when it can never bind.

    Every record reaches its functional-unit class at the cycle the
    issue probe granted, and the issue ring admits at most
    ``issue_width`` grants per cycle — so a class with at least
    ``issue_width`` units sees at most ``issue_width`` same-cycle
    probes, never saturates, never defers a probe to a later cycle, and
    (by induction) never accumulates carryover demand.  Its ring is
    then pure bookkeeping that nothing reads: the probe is a timing
    no-op and is elided from the generated walk entirely.
    """
    if width >= issue_width:
        return None
    return _ring_probe(name, width, indent, cycle_var=cycle_var, floor_var=floor_var)


def _walk_source(config: MachineConfig, derived: bool) -> str:
    """Generate the specialized walk source for one machine config.

    Every configuration scalar is baked in as a literal, power-of-two
    divisions become shifts, and only the relevant cache-associativity
    variant is emitted — the bytecode the interpreter runs is exactly
    the arithmetic this machine needs, nothing more.

    ``derived`` selects the address mode.  Simulator traces derive the
    instruction address from the static uid, so the fetch-line number
    and branch pc are *static* per-uid facts: the derived walk bakes
    them into the per-uid tuples, iterates the meta column alone (no
    address lane, no per-record line division) and reconstructs the
    icache's L2 line from the fetch line.  Hand-built traces carry an
    explicit address column and take the two-lane variant.
    """
    icfg, dcfg, l2cfg = config.icache, config.dcache, config.l2cache
    pcfg = config.predictor
    memory_latency = (
        config.memory_first_chunk_cycles + 3 * config.memory_interchunk_cycles
    )
    i_miss = icfg.hit_cycles + icfg.miss_penalty_cycles
    d_miss = dcfg.hit_cycles + dcfg.miss_penalty_cycles
    l2_extra = l2cfg.miss_penalty_cycles + memory_latency
    if derived:
        loop_header = "for meta in rows:"
        extract = "hot, line, pc, srcs = static_of[(meta >> 8) - base]"
        line_stmt = ""
        pc_stmt = "pass  # pc is baked into the static tuple"
        # addr // l2_line == (addr // l1_line) // (l2_line // l1_line)
        # exactly, because _derived_mode_supported checked divisibility.
        i_l2_line = _div("line", l2cfg.line_bytes // icfg.line_bytes)
    else:
        loop_header = "for meta, address in zip(rows, addresses):"
        extract = "hot, srcs = static_of[(meta >> 8) - base]"
        line_stmt = "line = " + _div("address", icfg.line_bytes) + "\n        "
        pc_stmt = "pc = address >> 2"
        i_l2_line = _div("address", l2cfg.line_bytes)
    window_wrap = (
        "window_index = (window_index + 1) & " + str(config.max_in_flight - 1)
        if config.max_in_flight & (config.max_in_flight - 1) == 0
        else "window_index += 1\n"
        + " " * 8
        + f"if window_index == {config.max_in_flight}:\n"
        + " " * 12
        + "window_index = 0"
    )
    # The empty-way sentinel must be unreachable by any computed tag;
    # tags are negative for negative (hand-built) addresses, so an int
    # sentinel like -1 would alias a real tag.  None compares unequal
    # to every int, exactly like the reference's empty way list.
    i_setup = (
        f"i_mru, i_lru = [None] * {icfg.num_sets}, [None] * {icfg.num_sets}"
        if icfg.associativity == 2
        else f"i_ways = [[] for _ in range({icfg.num_sets})]"
    )
    d_setup = (
        f"d_mru, d_lru = [None] * {dcfg.num_sets}, [None] * {dcfg.num_sets}"
        if dcfg.associativity == 2
        else f"d_ways = [[] for _ in range({dcfg.num_sets})]"
    )
    return KERNEL_TEMPLATE.format(
        LOOP_HEADER=loop_header,
        EXTRACT=extract,
        LINE_STMT=line_stmt,
        PC_STMT=pc_stmt,
        FETCH_WIDTH=config.fetch_width,
        ISSUE_WIDTH=config.issue_width,
        RETIRE_WIDTH=config.retire_width,
        FRONTEND=config.frontend_depth,
        WINDOW=config.max_in_flight,
        WINDOW_WRAP=window_wrap,
        MISPREDICT_PENALTY=config.mispredict_redirect_penalty,
        RING_CAPACITY=1 << _RING_BITS,
        I_SETUP=i_setup,
        D_SETUP=d_setup,
        I_ACCESS=_l1_access("i", icfg, "line", " " * 12),
        I_L2=_l2_access(l2cfg, i_l2_line, i_miss, i_miss + l2_extra, " " * 16),
        D_ACCESS=_l1_access(
            "d", dcfg, _div("mem_address", dcfg.line_bytes), " " * 16
        ),
        D_L2=_l2_access(
            l2cfg,
            _div("mem_address", l2cfg.line_bytes),
            d_miss,
            d_miss + l2_extra,
            " " * 20,
        ),
        ISSUE_PROBE=_ring_probe("iss", config.issue_width, " " * 8),
        ALU_PROBE=_fu_probe("alu", config.int_alus, config.issue_width, " " * 12)
        or (" " * 12 + "pass"),
        MUL_PROBE=_fu_probe("mul", config.int_muls, config.issue_width, " " * 16)
        or (" " * 16 + "pass"),
        LSQ_PROBE=_fu_probe("lsq", config.lsq_ports, config.issue_width, " " * 16)
        or (" " * 16 + "pass"),
        I_HIT=icfg.hit_cycles,
        L2_SETS=l2cfg.num_sets,
        G_ENTRIES=pcfg.gshare_entries,
        B_ENTRIES=pcfg.bimodal_entries,
        S_ENTRIES=pcfg.selector_entries,
        G_MASK=pcfg.gshare_entries - 1,
        B_MASK=pcfg.bimodal_entries - 1,
        S_MASK=pcfg.selector_entries - 1,
        HISTORY_MASK=(1 << pcfg.history_bits) - 1,
        UINT64=_UINT64,
    )


#: (MachineConfig, derived) -> compiled walk (configs are frozen/hashable).
_WALK_CACHE: dict = {}


def _walk_for(config: MachineConfig, derived: bool):
    key = (config, derived)
    walk = _WALK_CACHE.get(key)
    if walk is None:
        namespace = {"_grow_ring": _grow_ring}
        exec(compile(_walk_source(config, derived), "<timing-kernel>", "exec"), namespace)
        walk = namespace["_timing_walk"]
        _WALK_CACHE[key] = walk
    return walk


def _derived_mode_supported(config: MachineConfig) -> bool:
    """Derived mode reconstructs the icache's L2 line from the fetch
    line, which is exact only when the L2 line size is a whole multiple
    of the icache line size (true for any sane hierarchy, including
    Table 2's 64B over 32B)."""
    return config.l2cache.line_bytes % config.icache.line_bytes == 0


#: StaticInfo -> mode-keyed per-uid tuple lists for the walk's single
#: static lookup per record.  Weak keys: the lists die with the program.
_STATIC_OF_CACHE: "weakref.WeakKeyDictionary[StaticInfo, dict]" = (
    weakref.WeakKeyDictionary()
)


def _static_of_for(static: StaticInfo, table: StaticTable, addr_map, line_bytes: int):
    """The per-uid walk tuples for one mode (cached).

    Explicit mode: ``(hot word, src regs)``.  Derived mode adds the
    per-uid fetch-line number and branch pc — pure functions of the
    trace's uid → address map — keyed by the icache line size and
    revalidated against the trace's map (machines rebuilt for the same
    program produce equal maps; a different map just rebuilds).
    """
    modes = _STATIC_OF_CACHE.get(static)
    if modes is None:
        modes = {}
        _STATIC_OF_CACHE[static] = modes
    key = ("derived", line_bytes) if addr_map is not None else ("explicit",)
    cached = modes.get(key)
    if cached is not None:
        cached_table, cached_map, static_of = cached
        if cached_table is table and (
            cached_map is addr_map or cached_map == addr_map
        ):
            return static_of
    hot_list = table.hot_word.tolist()
    srcs_list = table.src_tuples()
    if addr_map is None:
        static_of = list(zip(hot_list, srcs_list))
    else:
        base = table.uid_base
        static_of = []
        for index, (hot, srcs) in enumerate(zip(hot_list, srcs_list)):
            address = addr_map.get(base + index)
            if address is None:
                # Unreachable after run_compiled's uid validation.
                static_of.append((hot, -1, 0, srcs))
            else:
                static_of.append((hot, address // line_bytes, address >> 2, srcs))
    modes[key] = (table, addr_map, static_of)
    return static_of


def run_compiled(trace: Trace, config: MachineConfig | None = None):
    """The compiled timing walk; bit-exact vs the reference scoreboard."""
    from .ooo import TimingResult  # local import breaks the module cycle

    config = config or MachineConfig()
    static = trace.static
    addr_map = trace.address_map
    derived = (
        trace.has_derived_addresses
        and addr_map is not None
        and _derived_mode_supported(config)
    )
    # Same up-front uid validation (and the same KeyError) as the
    # reference walk: a record without a static entry must not silently
    # index a hole or an unrelated entry, and a derived-address record
    # without an address must fail exactly like the reference's
    # address-column materialization does.
    for uid in trace.uid_counts():
        if static.get(uid) is None:
            raise KeyError(uid)
        if derived and uid not in addr_map:
            raise KeyError(uid)

    table = _table_for(static)
    static_of = _static_of_for(
        static, table, addr_map if derived else None, config.icache.line_bytes
    )
    walk = _walk_for(config, derived)
    (
        cycles,
        lookups,
        mispredictions,
        i_accesses,
        i_misses,
        d_accesses,
        d_misses,
        l2_accesses,
        l2_misses,
        loads,
        stores,
    ) = walk(
        trace.metas,
        None if derived else trace.addresses(),
        trace.mem_addresses,
        static_of,
        table.uid_base,
        table.num_regs,
    )
    return TimingResult(
        cycles=cycles,
        instructions=len(trace),
        branch_lookups=lookups,
        branch_mispredictions=mispredictions,
        icache_accesses=i_accesses,
        icache_misses=i_misses,
        dcache_accesses=d_accesses,
        dcache_misses=d_misses,
        l2_accesses=l2_accesses,
        l2_misses=l2_misses,
        loads=loads,
        stores=stores,
    )


# ---------------------------------------------------------------------------
# Multi-config timing kernel: one trace walk, many machine-config lanes.
#
# Within a *shape group* — configs sharing cache geometries (line/sets/
# associativity for L1I, L1D and L2), the predictor configuration and
# the address mode — the entire front-end event stream is identical
# across configs: the fetch-line sequence, every cache hit/miss level,
# the predictor's prediction/update stream (a pure function of the
# (pc, taken) trace stream), mispredict events and call/return
# redirect events.  Configs in a group may still differ in every
# *cycle-valued* parameter: pipeline widths, window size, frontend
# depth, mispredict penalty, functional-unit counts and all cache
# latencies.  The multi-config kernel exploits this: the generated
# source walks the trace once, computes the shared stream once per
# record, and carries one scoreboard *lane* per config (suffixed
# locals, per-lane ring allocators) with that lane's constants baked
# in as literals — so N configs cost one trace decode, one static
# lookup, one cache/predictor simulation, plus N scoreboards.
# ---------------------------------------------------------------------------

#: Lane cap per generated multi-config walk.  More lanes amortize the
#: shared front-end further but grow the per-record bytecode body;
#: beyond ~8 lanes the marginal win is noise while the generated source
#: (and its compile time) keeps growing, so larger batches are chunked.
MULTI_KERNEL_MAX_LANES = 8

#: log2 of the initial per-lane ring capacity.  Smaller than the
#: single-config kernel's ring (each lane allocates four rings, and a
#: group allocates ``4 * lanes``); growth-on-live-collision keeps this
#: a sizing hint, not a correctness bound.
_MULTI_RING_BITS = 12


def _lane_shape(config: MachineConfig, derived: bool) -> tuple:
    """Grouping key under which configs can share a multi-config walk.

    Everything the *shared* (per-group) generated code bakes in must be
    in the key: cache geometries, predictor table sizes/history and the
    address mode.  Cycle-valued parameters are per-lane and excluded.
    """
    icfg, dcfg, l2cfg = config.icache, config.dcache, config.l2cache
    return (
        derived,
        (icfg.line_bytes, icfg.num_sets, icfg.associativity),
        (dcfg.line_bytes, dcfg.num_sets, dcfg.associativity),
        (l2cfg.line_bytes, l2cfg.num_sets, l2cfg.associativity),
        config.predictor,
    )


def _multi_walk_source(configs: tuple, derived: bool) -> str:
    """Generate the lane-parallel walk source for one shape group.

    The per-record body is the single-config kernel's, reorganized:
    shared sections (extract, fetch-line/icache, FU-class dispatch,
    dcache, dest decode, branch/predictor) are emitted once and branch
    into per-lane blocks (fetch accounting, dependence/issue probes,
    completion, commit, redirect application) with each lane's scalar
    parameters baked in as literals.  Bit-exactness per lane against
    ``run_compiled``/``run_reference`` is asserted by the differential
    tests in ``tests/test_uarch_timing.py``.
    """
    n = len(configs)
    shape = configs[0]
    icfg, dcfg, l2cfg = shape.icache, shape.dcache, shape.l2cache
    pcfg = shape.predictor
    rc = 1 << _MULTI_RING_BITS
    lanes = range(n)
    same_window = len({c.max_in_flight for c in configs}) == 1
    src: list[str] = []

    def emit(depth: int, text: str = "") -> None:
        src.append("    " * depth + text if text else "")

    def l2_extra(config: MachineConfig) -> int:
        memory_latency = (
            config.memory_first_chunk_cycles + 3 * config.memory_interchunk_cycles
        )
        return config.l2cache.miss_penalty_cycles + memory_latency

    def fetch_bump(config: MachineConfig, level: int) -> int:
        # The single kernel bumps fetch by (latency - hit_cycles) when
        # an instruction fetch missed: miss_penalty at L2-hit level,
        # plus the L2 miss path's memory latency at L2-miss level.
        bump = config.icache.miss_penalty_cycles
        if level == 2:
            bump += l2_extra(config)
        return bump

    def d_latency(config: MachineConfig, level: int) -> int:
        latency = config.dcache.hit_cycles
        if level >= 1:
            latency += config.dcache.miss_penalty_cycles
        if level == 2:
            latency += l2_extra(config)
        return latency

    def emit_fetch_plain(depth: int, lane: int) -> None:
        config = configs[lane]
        emit(depth, f"if fic{lane} >= {config.fetch_width}:")
        emit(depth + 1, f"fetch{lane} += 1")
        emit(depth + 1, f"fic{lane} = 1")
        emit(depth + 1, f"floor{lane} += 1")
        emit(depth, "else:")
        emit(depth + 1, f"fic{lane} += 1")

    def emit_fetch_all(depth: int, level: int) -> None:
        # level 0: fetch hit (plain width accounting); level 1/2: the
        # lane stalls by its baked bump unless that bump is zero (a
        # zero-penalty lane treats the miss as a hit, exactly like the
        # single kernel's ``latency > hit`` test).
        for lane in lanes:
            bump = fetch_bump(configs[lane], level) if level else 0
            if bump == 0:
                emit_fetch_plain(depth, lane)
            else:
                emit(depth, f"fetch{lane} += {bump}")
                emit(depth, f"fic{lane} = 1")
                emit(depth, f"floor{lane} = fetch{lane} + {configs[lane].frontend_depth}")

    def emit_l2(depth: int, line_expr: str, on_hit, on_miss) -> None:
        emit(depth, "l2_accesses += 1")
        emit(depth, "l2line = " + line_expr)
        emit(depth, "ways = l2_ways[" + _mod("l2line", l2cfg.num_sets) + "]")
        emit(depth, "l2tag = " + _div("l2line", l2cfg.num_sets))
        emit(depth, "if l2tag in ways:")
        emit(depth + 1, "ways.remove(l2tag)")
        emit(depth + 1, "ways.append(l2tag)")
        on_hit(depth + 1)
        emit(depth, "else:")
        emit(depth + 1, "l2_misses += 1")
        emit(depth + 1, "ways.append(l2tag)")
        emit(depth + 1, f"if len(ways) > {l2cfg.associativity}:")
        emit(depth + 2, "ways.pop(0)")
        on_miss(depth + 1)

    def emit_load_complete(depth: int, level: int) -> None:
        # Stores retire from the store queue at latency 1 in every lane;
        # loads take the lane's baked latency for this hit/miss level.
        emit(depth, "if hot & 2048:")
        for lane in lanes:
            emit(depth + 1, f"c{lane} = cyc{lane} + 1")
        emit(depth, "else:")
        for lane in lanes:
            emit(depth + 1, f"c{lane} = cyc{lane} + {d_latency(configs[lane], level)}")

    # ----------------------------------------------------------- header
    emit(0, "def _timing_walk_multi(rows, addresses, mem_column, static_of, base, num_regs):")
    if icfg.associativity == 2:
        emit(1, f"i_mru, i_lru = [None] * {icfg.num_sets}, [None] * {icfg.num_sets}")
    else:
        emit(1, f"i_ways = [[] for _ in range({icfg.num_sets})]")
    if dcfg.associativity == 2:
        emit(1, f"d_mru, d_lru = [None] * {dcfg.num_sets}, [None] * {dcfg.num_sets}")
    else:
        emit(1, f"d_ways = [[] for _ in range({dcfg.num_sets})]")
    emit(1, f"l2_ways = [[] for _ in range({l2cfg.num_sets})]")
    emit(1, "i_accesses = i_misses = d_accesses = d_misses = l2_accesses = l2_misses = 0")
    emit(1, f"gshare = [1] * {pcfg.gshare_entries}")
    emit(1, f"bimodal = [1] * {pcfg.bimodal_entries}")
    emit(1, f"selector = [2] * {pcfg.selector_entries}")
    emit(1, "history = 0")
    emit(1, "lookups = mispredictions = 0")
    emit(1, "loads = stores = 0")
    emit(1, "current_fetch_line = -1")
    emit(1, "mem_cursor = 0")
    emit(1, "redirect_pending = False")
    def binding_rings(lane: int) -> list[str]:
        # Functional-unit rings with at least issue_width units can
        # never bind (see _fu_probe) and are elided per lane.
        config = configs[lane]
        rings = ["iss"]
        for ring, width in (
            ("alu", config.int_alus),
            ("mul", config.int_muls),
            ("lsq", config.lsq_ports),
        ):
            if width < config.issue_width:
                rings.append(ring)
        return rings

    for lane in lanes:
        config = configs[lane]
        for ring in binding_rings(lane):
            name = f"{ring}{lane}"
            emit(1, f"{name}_cycle_at, {name}_count, {name}_mask = [-1] * {rc}, [0] * {rc}, {rc - 1}")
            emit(1, f"{name}_skip_from = {name}_skip_to = -1")
        emit(1, f"cf{lane} = -1")
        emit(1, f"cu{lane} = 0")
        emit(1, f"rr{lane} = [0] * num_regs")
        emit(1, f"wc{lane} = [0] * {config.max_in_flight}")
        emit(1, f"fetch{lane} = 0")
        emit(1, f"fic{lane} = 0")
        emit(1, f"floor{lane} = {config.frontend_depth}")
        emit(1, f"redirect{lane} = 0")
    if same_window:
        emit(1, "wi = 0")
    else:
        for lane in lanes:
            emit(1, f"wi{lane} = 0")

    # ------------------------------------------------------------- loop
    if derived:
        emit(1, "for meta in rows:")
        emit(2, "hot, line, pc, srcs = static_of[(meta >> 8) - base]")
        i_l2_line = _div("line", l2cfg.line_bytes // icfg.line_bytes)
    else:
        emit(1, "for meta, address in zip(rows, addresses):")
        emit(2, "hot, srcs = static_of[(meta >> 8) - base]")
        emit(2, "line = " + _div("address", icfg.line_bytes))
        i_l2_line = _div("address", l2cfg.line_bytes)

    # Redirect application: the pending flag is set exactly when an
    # event wrote every lane's redirect, so value-truthiness (the
    # single kernel's consume test) and flag-truthiness coincide up to
    # all-zero redirects, which apply as no-ops in either scheme.
    emit(2, "if redirect_pending:")
    emit(3, "redirect_pending = False")
    for lane in lanes:
        emit(3, f"if redirect{lane} > fetch{lane}:")
        emit(4, f"fetch{lane} = redirect{lane}")
        emit(4, f"fic{lane} = 0")
        emit(4, f"floor{lane} = fetch{lane} + {configs[lane].frontend_depth}")

    # Shared fetch line + icache, branching into per-lane fetch blocks.
    emit(2, "if line != current_fetch_line:")
    emit(3, "current_fetch_line = line")
    emit(3, "i_accesses += 1")
    emit(3, "iset_ = " + _mod("line", icfg.num_sets))
    emit(3, "tag = " + _div("line", icfg.num_sets))
    if icfg.associativity == 2:
        emit(3, "if tag == i_mru[iset_]:")
        emit_fetch_all(4, 0)
        emit(3, "elif tag == i_lru[iset_]:")
        emit(4, "i_lru[iset_] = i_mru[iset_]")
        emit(4, "i_mru[iset_] = tag")
        emit_fetch_all(4, 0)
        emit(3, "else:")
        emit(4, "i_misses += 1")
        emit(4, "i_lru[iset_] = i_mru[iset_]")
        emit(4, "i_mru[iset_] = tag")
        emit_l2(
            4,
            i_l2_line,
            lambda depth: emit_fetch_all(depth, 1),
            lambda depth: emit_fetch_all(depth, 2),
        )
    else:
        emit(3, "ways = i_ways[iset_]")
        emit(3, "if tag in ways:")
        emit(4, "ways.remove(tag)")
        emit(4, "ways.append(tag)")
        emit_fetch_all(4, 0)
        emit(3, "else:")
        emit(4, "i_misses += 1")
        emit(4, "ways.append(tag)")
        emit(4, f"if len(ways) > {icfg.associativity}:")
        emit(5, "ways.pop(0)")
        emit_l2(
            4,
            i_l2_line,
            lambda depth: emit_fetch_all(depth, 1),
            lambda depth: emit_fetch_all(depth, 2),
        )
    emit(2, "else:")
    for lane in lanes:
        emit_fetch_plain(3, lane)

    # Per-lane dispatch (window floor), one shared dependence loop that
    # maxes every lane's cycle in a single pass over srcs, then the
    # per-lane issue probes.
    for lane in lanes:
        wiv = "wi" if same_window else f"wi{lane}"
        emit(2, f"cyc{lane} = wc{lane}[{wiv}]")
        emit(2, f"if cyc{lane} < floor{lane}:")
        emit(3, f"cyc{lane} = floor{lane}")
    emit(2, "for reg in srcs:")
    for lane in lanes:
        emit(3, f"r = rr{lane}[reg]")
        emit(3, f"if r > cyc{lane}:")
        emit(4, f"cyc{lane} = r")
    for lane in lanes:
        src.append(
            _ring_probe(
                f"iss{lane}",
                configs[lane].issue_width,
                " " * 8,
                cycle_var=f"cyc{lane}",
                floor_var=f"floor{lane}",
            )
        )

    # Shared FU-class dispatch, per-lane functional-unit probes
    # (lanes whose class can never bind are elided, see _fu_probe).
    def emit_fu_probes(ring: str, widths, indent: str, pad_depth: int) -> None:
        emitted = False
        for lane in lanes:
            probe = _fu_probe(
                f"{ring}{lane}",
                widths[lane],
                configs[lane].issue_width,
                indent,
                cycle_var=f"cyc{lane}",
                floor_var=f"floor{lane}",
            )
            if probe is not None:
                src.append(probe)
                emitted = True
        if not emitted:
            emit(pad_depth, "pass")

    emit(2, "if hot & 768:")
    emit(3, "if hot & 512:")
    emit_fu_probes("lsq", [c.lsq_ports for c in configs], " " * 16, 4)
    emit(3, "else:")
    emit_fu_probes("mul", [c.int_muls for c in configs], " " * 16, 4)
    emit(2, "else:")
    emit_fu_probes("alu", [c.int_alus for c in configs], " " * 12, 3)

    # Shared execute: dcache levels fan into per-lane completions.
    emit(2, "if hot & 3072:")
    emit(3, "if hot & 1024:")
    emit(4, "loads += 1")
    emit(3, "else:")
    emit(4, "stores += 1")
    emit(3, "if meta & 2:")
    emit(4, f"mem_address = mem_column[mem_cursor] & {_UINT64}")
    emit(4, "mem_cursor += 1")
    emit(4, "d_accesses += 1")
    emit(4, "dline = " + _div("mem_address", dcfg.line_bytes))
    emit(4, "dset_ = " + _mod("dline", dcfg.num_sets))
    emit(4, "tag = " + _div("dline", dcfg.num_sets))
    d_l2_line = _div("mem_address", l2cfg.line_bytes)
    if dcfg.associativity == 2:
        emit(4, "if tag == d_mru[dset_]:")
        emit_load_complete(5, 0)
        emit(4, "elif tag == d_lru[dset_]:")
        emit(5, "d_lru[dset_] = d_mru[dset_]")
        emit(5, "d_mru[dset_] = tag")
        emit_load_complete(5, 0)
        emit(4, "else:")
        emit(5, "d_misses += 1")
        emit(5, "d_lru[dset_] = d_mru[dset_]")
        emit(5, "d_mru[dset_] = tag")
        emit_l2(
            5,
            d_l2_line,
            lambda depth: emit_load_complete(depth, 1),
            lambda depth: emit_load_complete(depth, 2),
        )
    else:
        emit(4, "ways = d_ways[dset_]")
        emit(4, "if tag in ways:")
        emit(5, "ways.remove(tag)")
        emit(5, "ways.append(tag)")
        emit_load_complete(5, 0)
        emit(4, "else:")
        emit(5, "d_misses += 1")
        emit(5, "ways.append(tag)")
        emit(5, f"if len(ways) > {dcfg.associativity}:")
        emit(6, "ways.pop(0)")
        emit_l2(
            5,
            d_l2_line,
            lambda depth: emit_load_complete(depth, 1),
            lambda depth: emit_load_complete(depth, 2),
        )
    emit(3, "else:")
    emit(4, "lat = hot & 255")
    for lane in lanes:
        emit(4, f"c{lane} = cyc{lane} + lat")
    emit(2, "else:")
    emit(3, "lat = hot & 255")
    for lane in lanes:
        emit(3, f"c{lane} = cyc{lane} + lat")
    emit(3, "if meta & 2:")
    emit(4, "mem_cursor += 1")

    # Per-lane commit (frontier pair) and window write.
    for lane in lanes:
        config = configs[lane]
        wiv = "wi" if same_window else f"wi{lane}"
        emit(2, f"if c{lane} > cf{lane}:")
        emit(3, f"cf{lane} = c{lane}")
        emit(3, f"cu{lane} = 1")
        emit(2, f"elif cu{lane} >= {config.retire_width}:")
        emit(3, f"cf{lane} += 1")
        emit(3, f"cu{lane} = 1")
        emit(2, "else:")
        emit(3, f"cu{lane} += 1")
        emit(2, f"wc{lane}[{wiv}] = cf{lane}")

    emit(2, "dest = hot >> 16")
    emit(2, "if dest:")
    emit(3, "dreg = dest - 1")
    for lane in lanes:
        emit(3, f"rr{lane}[dreg] = c{lane}")

    if same_window:
        window = shape.max_in_flight
        if window & (window - 1) == 0:
            emit(2, f"wi = (wi + 1) & {window - 1}")
        else:
            emit(2, "wi += 1")
            emit(2, f"if wi == {window}:")
            emit(3, "wi = 0")
    else:
        for lane in lanes:
            window = configs[lane].max_in_flight
            if window & (window - 1) == 0:
                emit(2, f"wi{lane} = (wi{lane} + 1) & {window - 1}")
            else:
                emit(2, f"wi{lane} += 1")
                emit(2, f"if wi{lane} == {window}:")
                emit(3, f"wi{lane} = 0")

    # Shared branch/predictor section; redirect events write every lane.
    emit(2, "if hot & 20480:")
    emit(3, "if hot & 4096 and meta & 4:")
    emit(4, "if hot & 8192:")
    emit(5, "taken = meta & 8")
    if not derived:
        emit(5, "pc = address >> 2")
    emit(5, f"gkey = (pc ^ history) & {pcfg.gshare_entries - 1}")
    emit(5, f"bkey = pc & {pcfg.bimodal_entries - 1}")
    emit(5, f"skey = pc & {pcfg.selector_entries - 1}")
    emit(5, "gshare_prediction = gshare[gkey] >= 2")
    emit(5, "bimodal_prediction = bimodal[bkey] >= 2")
    emit(5, "if selector[skey] >= 2:")
    emit(6, "prediction = gshare_prediction")
    emit(5, "else:")
    emit(6, "prediction = bimodal_prediction")
    emit(5, "lookups += 1")
    history_mask = (1 << pcfg.history_bits) - 1

    def emit_mispredict(depth: int) -> None:
        emit(depth, "mispredictions += 1")
        emit(depth, "redirect_pending = True")
        for lane in lanes:
            penalty = configs[lane].mispredict_redirect_penalty
            emit(depth, f"redirect{lane} = c{lane} + {penalty}")
        emit(depth, "current_fetch_line = -1")

    emit(5, "if taken:")
    emit(6, "if gshare_prediction != bimodal_prediction:")
    emit(7, "counter = selector[skey]")
    emit(7, "if gshare_prediction:")
    emit(8, "if counter < 3:")
    emit(9, "selector[skey] = counter + 1")
    emit(7, "elif counter > 0:")
    emit(8, "selector[skey] = counter - 1")
    emit(6, "counter = gshare[gkey]")
    emit(6, "if counter < 3:")
    emit(7, "gshare[gkey] = counter + 1")
    emit(6, "counter = bimodal[bkey]")
    emit(6, "if counter < 3:")
    emit(7, "bimodal[bkey] = counter + 1")
    emit(6, f"history = ((history << 1) | 1) & {history_mask}")
    emit(6, "if not prediction:")
    emit_mispredict(7)
    emit(5, "else:")
    emit(6, "if gshare_prediction != bimodal_prediction:")
    emit(7, "counter = selector[skey]")
    emit(7, "if gshare_prediction:")
    emit(8, "if counter > 0:")
    emit(9, "selector[skey] = counter - 1")
    emit(7, "elif counter < 3:")
    emit(8, "selector[skey] = counter + 1")
    emit(6, "counter = gshare[gkey]")
    emit(6, "if counter > 0:")
    emit(7, "gshare[gkey] = counter - 1")
    emit(6, "counter = bimodal[bkey]")
    emit(6, "if counter > 0:")
    emit(7, "bimodal[bkey] = counter - 1")
    emit(6, f"history = (history << 1) & {history_mask}")
    emit(6, "if prediction:")
    emit_mispredict(7)
    emit(3, "elif hot & 16384 and meta & 8:")
    emit(4, "redirect_pending = True")
    for lane in lanes:
        emit(4, f"redirect{lane} = fetch{lane} + 1")
    emit(4, "current_fetch_line = -1")

    # --------------------------------------------------------- epilogue
    for lane in lanes:
        emit(1, f"if cf{lane} < 0:")
        emit(2, f"cf{lane} = 0")
    emit(1, "return (")
    for lane in lanes:
        emit(2, f"(cf{lane} if cf{lane} > fetch{lane} else fetch{lane}) + 1,")
    emit(2, "lookups,")
    emit(2, "mispredictions,")
    emit(2, "i_accesses,")
    emit(2, "i_misses,")
    emit(2, "d_accesses,")
    emit(2, "d_misses,")
    emit(2, "l2_accesses,")
    emit(2, "l2_misses,")
    emit(2, "loads,")
    emit(2, "stores,")
    emit(1, ")")
    return "\n".join(src) + "\n"


#: (lane-config tuple, derived) -> compiled multi-config walk.
_MULTI_WALK_CACHE: dict = {}


def _multi_walk_for(configs: tuple, derived: bool):
    key = (configs, derived)
    walk = _MULTI_WALK_CACHE.get(key)
    if walk is None:
        namespace = {"_grow_ring": _grow_ring}
        exec(
            compile(
                _multi_walk_source(configs, derived),
                "<timing-kernel-multi>",
                "exec",
            ),
            namespace,
        )
        walk = namespace["_timing_walk_multi"]
        _MULTI_WALK_CACHE[key] = walk
    return walk


def run_compiled_many(
    trace: Trace,
    configs,
    *,
    max_lanes: int | None = None,
) -> list:
    """Time ``trace`` under many machine configs in one batched walk.

    Order-preserving: ``results[i]`` corresponds to ``configs[i]``
    (``None`` entries mean the default :class:`MachineConfig`), and
    every result is field-for-field identical to
    ``run_compiled(trace, configs[i])``.  Duplicate configs are timed
    once; distinct configs are grouped by :func:`_lane_shape` so each
    group shares one trace walk (front-end simulated once, one
    scoreboard lane per config), chunked at ``max_lanes``
    (:data:`MULTI_KERNEL_MAX_LANES` by default).  A config alone in its
    shape group falls back to the single-config kernel.
    """
    from .ooo import TimingResult  # local import breaks the module cycle

    resolved = [config or MachineConfig() for config in configs]
    if not resolved:
        return []
    if max_lanes is None:
        max_lanes = MULTI_KERNEL_MAX_LANES
    if max_lanes < 1:
        raise ValueError(f"max_lanes must be positive, got {max_lanes}")

    static = trace.static
    addr_map = trace.address_map
    has_derived = trace.has_derived_addresses and addr_map is not None
    uid_counts = trace.uid_counts()
    # Same up-front uid validation (and the same KeyError) as the
    # reference and single-config walks.
    for uid in uid_counts:
        if static.get(uid) is None:
            raise KeyError(uid)

    lane_index: dict[MachineConfig, int] = {}
    unique: list[MachineConfig] = []
    for config in resolved:
        if config not in lane_index:
            lane_index[config] = len(unique)
            unique.append(config)
    derived_flags = [has_derived and _derived_mode_supported(c) for c in unique]
    if any(derived_flags):
        for uid in uid_counts:
            if uid not in addr_map:
                raise KeyError(uid)

    groups: dict[tuple, list[int]] = {}
    for index, config in enumerate(unique):
        groups.setdefault(_lane_shape(config, derived_flags[index]), []).append(index)

    table = _table_for(static)
    fields: list = [None] * len(unique)
    for shape_key, members in groups.items():
        derived = shape_key[0]
        for start in range(0, len(members), max_lanes):
            chunk = members[start : start + max_lanes]
            if len(chunk) == 1:
                index = chunk[0]
                single = run_compiled(trace, unique[index])
                fields[index] = (
                    single.cycles,
                    single.branch_lookups,
                    single.branch_mispredictions,
                    single.icache_accesses,
                    single.icache_misses,
                    single.dcache_accesses,
                    single.dcache_misses,
                    single.l2_accesses,
                    single.l2_misses,
                    single.loads,
                    single.stores,
                )
                continue
            lane_configs = tuple(unique[index] for index in chunk)
            static_of = _static_of_for(
                static,
                table,
                addr_map if derived else None,
                lane_configs[0].icache.line_bytes,
            )
            walk = _multi_walk_for(lane_configs, derived)
            out = walk(
                trace.metas,
                None if derived else trace.addresses(),
                trace.mem_addresses,
                static_of,
                table.uid_base,
                table.num_regs,
            )
            shared = out[len(chunk) :]
            for lane, index in enumerate(chunk):
                fields[index] = (out[lane], *shared)

    instructions = len(trace)
    results = []
    for config in resolved:
        (
            cycles,
            lookups,
            mispredictions,
            i_accesses,
            i_misses,
            d_accesses,
            d_misses,
            l2_accesses,
            l2_misses,
            loads,
            stores,
        ) = fields[lane_index[config]]
        results.append(
            TimingResult(
                cycles=cycles,
                instructions=instructions,
                branch_lookups=lookups,
                branch_mispredictions=mispredictions,
                icache_accesses=i_accesses,
                icache_misses=i_misses,
                dcache_accesses=d_accesses,
                dcache_misses=d_misses,
                l2_accesses=l2_accesses,
                l2_misses=l2_misses,
                loads=loads,
                stores=stores,
            )
        )
    return results
