"""Out-of-order microarchitecture timing model (Table 2 machine).

Two bit-identical kernel tiers run the model: the reference scoreboard
walk (:meth:`OutOfOrderModel.run_reference`) and the compiled kernel
(:mod:`repro.uarch.tkernel`, the default — packed static table,
ring-buffer slot allocators, inlined caches/predictor).  Select with
``REPRO_TIMING_KERNEL`` or ``OutOfOrderModel(kernel=...)``; see
``docs/timing.md``.
"""

from .branch_predictor import CombinedPredictor
from .caches import Cache, CacheHierarchy
from .config import CacheConfig, MachineConfig, PredictorConfig
from .ooo import TIMING_KERNELS, OutOfOrderModel, TimingResult
from .tkernel import (
    MULTI_KERNEL_MAX_LANES,
    StaticTable,
    bake_static_table,
    run_compiled,
    run_compiled_many,
)

__all__ = [
    "CombinedPredictor",
    "Cache",
    "CacheHierarchy",
    "CacheConfig",
    "MachineConfig",
    "PredictorConfig",
    "OutOfOrderModel",
    "TimingResult",
    "TIMING_KERNELS",
    "StaticTable",
    "bake_static_table",
    "run_compiled",
    "run_compiled_many",
    "MULTI_KERNEL_MAX_LANES",
]
