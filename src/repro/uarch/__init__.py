"""Out-of-order microarchitecture timing model (Table 2 machine)."""

from .branch_predictor import CombinedPredictor
from .caches import Cache, CacheHierarchy
from .config import CacheConfig, MachineConfig, PredictorConfig
from .ooo import OutOfOrderModel, TimingResult

__all__ = [
    "CombinedPredictor",
    "Cache",
    "CacheHierarchy",
    "CacheConfig",
    "MachineConfig",
    "PredictorConfig",
    "OutOfOrderModel",
    "TimingResult",
]
